"""Benchmark: columnar bulk kernels vs the scalar filtering/box/band paths.

Measures the three bulk kernels the columnar store enables against the
retained scalar paths they replace, per database size:

* ``corridor`` — :func:`repro.engine.filtering.corridor_probe_bulk` over a
  query batch vs the scalar per-query loop (fresh
  ``TrajectoryArrays(use_columnar=False)``, i.e. the pre-columnar filtering
  path every engine construction used to pay, including its per-sample
  extraction);
* ``boxes`` — :func:`repro.trajectories.columnar.segment_boxes_bulk` +
  entry materialization vs the per-trajectory
  :func:`repro.index.boxes.segment_boxes` loop (the index bulk-load input);
* ``band`` — :func:`repro.core.pruning.band_intervals_batch` with
  ``kernel="vector"`` (batched rows + shared base classification) vs the
  pinned scalar oracle (``kernel="scalar"``, the original per-candidate
  row builder) over a prepared context's candidates;
* ``klevel`` — :func:`repro.geometry.envelope.klevel.k_level_envelopes`
  with ``kernel="vector"`` (the kinetic arrangement sweep) vs the pinned
  ``k_level_envelopes_scalar`` exclusion cascade.

Every comparison asserts result equality (bit-identical pieces and
intervals) before reporting, so a speedup can never come from a divergent
answer; in addition, one sharded fleet is answered across the serial,
thread, and process backends under both kernels before any timing starts,
asserting byte-identical answers end to end.  Run with::

    PYTHONPATH=src python benchmarks/bench_columnar.py
    PYTHONPATH=src python benchmarks/bench_columnar.py --sizes 500 --queries 8

``--quick`` trims the query batch but keeps the N=2000 size: the
regression gate pins the corridor speedup at that size.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.pruning import band_intervals, band_intervals_batch
from repro.engine import QueryEngine
from repro.geometry.envelope.klevel import (
    k_level_envelopes,
    k_level_envelopes_scalar,
)
from repro.engine.filtering import (
    TrajectoryArrays,
    conservative_corridor_radius,
    corridor_probe_bulk,
)
from repro.index.boxes import segment_boxes
from repro.trajectories.columnar import segment_boxes_bulk
from repro.trajectories.mod import MovingObjectsDatabase
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

from common import default_output_path, write_record

BENCH_NAME = "columnar"


def build_mod(num_objects: int, seed: int = 7) -> MovingObjectsDatabase:
    config = RandomWaypointConfig(num_objects=num_objects, seed=seed)
    return MovingObjectsDatabase(generate_trajectories(config))


def bench_corridor(
    mod: MovingObjectsDatabase, num_queries: int
) -> Dict[str, float]:
    lo, hi = mod.common_time_span()
    stride = max(1, len(mod) // num_queries)
    query_ids = mod.object_ids[::stride][:num_queries]
    widths = [mod.default_band_width(query_id) for query_id in query_ids]
    store = mod.columnar()

    started = time.perf_counter()
    scalar_arrays = TrajectoryArrays(use_columnar=False)
    scalar = np.array(
        [
            conservative_corridor_radius(mod, query_id, lo, hi, width, scalar_arrays)
            for query_id, width in zip(query_ids, widths)
        ]
    )
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    bulk = corridor_probe_bulk(mod, query_ids, lo, hi, widths, store=store)
    bulk_seconds = time.perf_counter() - started

    if not np.array_equal(scalar, bulk):
        raise AssertionError("corridor bulk kernel diverged from the scalar path")
    return {
        "corridor_scalar_ms": scalar_seconds * 1000.0,
        "corridor_bulk_ms": bulk_seconds * 1000.0,
        "corridor_speedup": scalar_seconds / bulk_seconds,
    }


def bench_boxes(mod: MovingObjectsDatabase) -> Dict[str, float]:
    pack = mod.columnar().pack()
    x_min, y_min, x_max, y_max = pack.spatial_bounds()
    max_extent = max(x_max - x_min, y_max - y_min) / 32.0 or None

    started = time.perf_counter()
    scalar: List = []
    for trajectory in mod:
        scalar.extend(segment_boxes(trajectory, max_extent=max_extent))
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    bulk = segment_boxes_bulk(pack, max_extent=max_extent).entries()
    bulk_seconds = time.perf_counter() - started

    if [entry.box for entry in bulk] != [entry.box for entry in scalar]:
        raise AssertionError("bulk segment boxes diverged from the scalar loop")
    return {
        "boxes_scalar_ms": scalar_seconds * 1000.0,
        "boxes_bulk_ms": bulk_seconds * 1000.0,
        "boxes_speedup": scalar_seconds / bulk_seconds,
        "boxes_entries": float(len(bulk)),
    }


def bench_band(mod: MovingObjectsDatabase) -> Dict[str, float]:
    lo, hi = mod.common_time_span()
    query_id = mod.object_ids[0]
    context = QueryEngine(mod).prepare(query_id, lo, hi).context
    functions = list(context.functions.values())

    started = time.perf_counter()
    scalar = band_intervals_batch(
        functions, context.envelope, context.band_width, lo, hi, kernel="scalar"
    )
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = band_intervals_batch(
        functions, context.envelope, context.band_width, lo, hi, kernel="vector"
    )
    batch_seconds = time.perf_counter() - started

    if scalar != batched:
        raise AssertionError("vector band kernel diverged from the scalar oracle")
    single = band_intervals(
        functions[0], context.envelope, context.band_width, lo, hi, kernel="scalar"
    )
    if single != scalar[0]:
        raise AssertionError("single-candidate call diverged from the batch row")
    return {
        "band_scalar_ms": scalar_seconds * 1000.0,
        "band_batch_ms": batch_seconds * 1000.0,
        "band_speedup": scalar_seconds / batch_seconds,
        "band_candidates": float(len(functions)),
    }


def _identical_levels(vectorized, scalar) -> bool:
    if len(vectorized) != len(scalar):
        return False
    for left, right in zip(vectorized.levels, scalar.levels):
        if len(left.pieces) != len(right.pieces):
            return False
        for one, two in zip(left.pieces, right.pieces):
            if (
                one.object_id != two.object_id
                or one.t_start != two.t_start
                or one.t_end != two.t_end
            ):
                return False
    return True


def bench_klevel(mod: MovingObjectsDatabase, max_levels: int = 3) -> Dict[str, float]:
    lo, hi = mod.common_time_span()
    query_id = mod.object_ids[0]
    context = QueryEngine(mod).prepare(query_id, lo, hi).context
    # The engine computes level envelopes over the band-pruned survivors
    # (QueryContext.level_envelopes), so the k-level kernel is timed on the
    # same input a rank query would hand it.
    functions = context.survivors() or list(context.functions.values())

    started = time.perf_counter()
    scalar = k_level_envelopes_scalar(functions, lo, hi, max_levels=max_levels)
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    vectorized = k_level_envelopes(
        functions, lo, hi, max_levels=max_levels, kernel="vector"
    )
    vector_seconds = time.perf_counter() - started

    if not _identical_levels(vectorized, scalar):
        raise AssertionError("kinetic k-level sweep diverged from the scalar cascade")
    return {
        "klevel_scalar_ms": scalar_seconds * 1000.0,
        "klevel_vector_ms": vector_seconds * 1000.0,
        "klevel_speedup": scalar_seconds / vector_seconds,
        "klevel_functions": float(len(functions)),
    }


def assert_backend_identity(num_objects: int = 96, seed: int = 23) -> None:
    """Byte-identity of sharded answers across backends and kernels.

    Runs one UQ3x and one UQ4x statement over a small fleet through the
    serial, thread, and process sharded backends with the envelope kernel
    flipped between ``vector`` and ``scalar`` via ``REPRO_ENVELOPE_KERNEL``
    (inherited by spawned shard workers), and asserts every combination
    returns exactly the same ids.  Raises before any timing happens, so a
    reported speedup can never ride on a backend-dependent answer.
    """
    import os

    from repro.parallel import ShardedEngine
    from repro.query_language import CostModel, QueryExecutor

    mod = build_mod(num_objects, seed=seed)
    lo, hi = mod.common_time_span()
    query_id = mod.object_ids[0]
    window = f"TIME IN [{lo}, {hi}]"
    texts = [
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND PROBABILITY_NN(T, '{query_id}', TIME) > 0",
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND RANK_NN(T, '{query_id}', TIME) <= 3",
    ]

    previous = os.environ.get("REPRO_ENVELOPE_KERNEL")
    answers = {}
    try:
        for kernel in ("vector", "scalar"):
            os.environ["REPRO_ENVELOPE_KERNEL"] = kernel
            for backend in ("serial", "thread", "process"):
                with ShardedEngine(
                    mod, num_shards=2, backend=backend
                ) as sharded:
                    executor = QueryExecutor(
                        mod,
                        sharded=sharded,
                        cost_model=CostModel(sharded_min_group=2),
                    )
                    answers[(kernel, backend)] = [
                        result.object_ids
                        for result in executor.execute_many(texts)
                    ]
    finally:
        if previous is None:
            os.environ.pop("REPRO_ENVELOPE_KERNEL", None)
        else:
            os.environ["REPRO_ENVELOPE_KERNEL"] = previous

    reference = answers[("scalar", "serial")]
    for key, value in answers.items():
        if value != reference:
            raise AssertionError(
                f"sharded answers diverged for kernel/backend {key}: "
                f"{value} != {reference}"
            )


def run_bench(
    quick: bool = False,
    sizes: List[int] | None = None,
    queries: int | None = None,
) -> Tuple[Dict, Dict[str, float]]:
    """Run the kernel sweep; returns ``(config, metrics)`` for the record schema.

    Metric keys are flattened per size: ``n<size>_<metric>``.  N=2000 stays
    in the quick grid because the regression gate pins the corridor-kernel
    speedup there.
    """
    sizes = sizes or ([2000] if quick else [500, 2000])
    queries = queries or (8 if quick else 16)
    config = {"sizes": sizes, "queries": queries, "quick": quick}
    metrics: Dict[str, float] = {}
    print("  backend/kernel byte-identity check (serial/thread/process) ...")
    assert_backend_identity()
    for num_objects in sizes:
        mod = build_mod(num_objects)
        started = time.perf_counter()
        mod.columnar().pack()
        pack_seconds = time.perf_counter() - started
        numbers = {"pack_ms": pack_seconds * 1000.0}
        numbers.update(bench_corridor(mod, queries))
        numbers.update(bench_boxes(mod))
        numbers.update(bench_band(mod))
        numbers.update(bench_klevel(mod))
        print(
            f"N={num_objects}: pack {numbers['pack_ms']:6.1f} ms | "
            f"corridor {numbers['corridor_scalar_ms']:7.1f} -> "
            f"{numbers['corridor_bulk_ms']:6.1f} ms "
            f"({numbers['corridor_speedup']:4.2f}x) | "
            f"boxes {numbers['boxes_scalar_ms']:7.1f} -> "
            f"{numbers['boxes_bulk_ms']:6.1f} ms "
            f"({numbers['boxes_speedup']:4.2f}x) | "
            f"band {numbers['band_scalar_ms']:7.1f} -> "
            f"{numbers['band_batch_ms']:6.1f} ms "
            f"({numbers['band_speedup']:4.2f}x) | "
            f"klevel {numbers['klevel_scalar_ms']:7.1f} -> "
            f"{numbers['klevel_vector_ms']:6.1f} ms "
            f"({numbers['klevel_speedup']:4.2f}x)"
        )
        for key, value in numbers.items():
            metrics[f"n{num_objects}_{key}"] = value
    return config, metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="database sizes to sweep (default 500 2000)",
    )
    parser.add_argument(
        "--queries", type=int, default=None,
        help="corridor query batch size (default 16, quick 8)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced grid (N=2000 only, 8 queries) for smoke tests",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help=f"write the record to this JSON file (e.g. {default_output_path(BENCH_NAME)})",
    )
    args = parser.parse_args()

    print("columnar bulk kernels vs scalar paths (equality asserted per comparison)")
    config, metrics = run_bench(
        quick=args.quick, sizes=args.sizes, queries=args.queries
    )
    if args.json:
        write_record(args.json, BENCH_NAME, config, metrics)
        print(f"  wrote {args.json}")


if __name__ == "__main__":
    main()
