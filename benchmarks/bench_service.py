"""Benchmark: async service serving vs direct per-query engine calls.

Replays the :func:`repro.workloads.replay.service_workload` dashboard
traffic pattern through a :class:`repro.service.QueryService` (bounded
queue, coalescing, TTL + revision result cache, warm engine pool) and
compares against answering the identical request stream with direct,
serial :meth:`repro.engine.QueryEngine.answer` calls on a warm engine:

* **service_requests_per_second** — served throughput of the replay;
* **service_p95_latency_ms** / **service_p99_latency_ms** — tail latency
  under the bursty schedule (p99 catches coalescing/queueing stragglers
  the p95 smooths over);
* **cache_hit_ratio** / **coalescing_factor** — how much of the speedup
  comes from result caching vs batch coalescing;
* **speedup_vs_direct** — service wall clock vs the serial baseline.

Every service answer is verified equal to the direct engine answer before
any timing is reported, so a speedup can never come from a divergent
answer.

Run with::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick --json BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import time
from typing import Dict, Tuple

from repro.engine import QueryEngine
from repro.obs.metrics import default_registry
from repro.service import QueryService
from repro.workloads.replay import replay, service_workload

from common import default_output_path, write_record

BENCH_NAME = "service"


def run_bench(quick: bool = False) -> Tuple[Dict, Dict[str, float]]:
    """Run the replay; returns ``(config, metrics)`` for the record schema."""
    if quick:
        workload = service_workload(
            num_vehicles=30, num_queries=6, ticks=12, requests_per_tick=6.0
        )
    else:
        workload = service_workload(
            num_vehicles=80, num_queries=16, ticks=40, requests_per_tick=12.0
        )
    config = {
        "quick": quick,
        "objects": len(workload.mod),
        "query_ids": len(workload.query_ids),
        "ticks": len(workload.ticks),
        "requests": workload.request_count,
        "unique_fingerprints": workload.unique_fingerprints,
    }

    # Direct baseline: the identical request stream, answered serially by
    # one warm engine (the pre-service serving story).  Its answers are the
    # oracle the service responses are checked against.
    direct_engine = QueryEngine(workload.mod)
    expected = {}
    started = time.perf_counter()
    for burst in workload.ticks:
        for request in burst:
            answer = direct_engine.answer(
                request.query_id,
                request.t_start,
                request.t_end,
                variant=request.variant,
                fraction=request.fraction,
                band_width=request.band_width,
            )
            expected[request.fingerprint] = answer
    direct_seconds = time.perf_counter() - started

    # Report into the process-global registry so run_all.py's final
    # BENCH_metrics.json dump carries this run's full instrument state.
    registry = default_registry()

    async def _serve():
        async with QueryService(workload.mod, registry=registry) as service:
            return await replay(
                service, workload, count_rejections=False, registry=registry
            )

    report = asyncio.run(_serve())
    if report.served != workload.request_count:
        raise AssertionError(
            f"served {report.served} of {workload.request_count} requests"
        )
    for response in report.responses:
        if response.answer != expected[response.request.fingerprint]:
            raise AssertionError(
                f"service answer diverged for {response.request}"
            )

    metrics: Dict[str, float] = {
        "direct_seconds": direct_seconds,
        "direct_requests_per_second": workload.request_count / direct_seconds,
        "service_seconds": report.wall_seconds,
        "service_requests_per_second": report.requests_per_second,
        "service_mean_latency_ms": (
            sum(report.latency_seconds()) * 1000.0 / report.served
        ),
        "service_p95_latency_ms": report.p95_latency * 1000.0,
        "service_p99_latency_ms": report.p99_latency * 1000.0,
        "cache_hit_ratio": report.cache_hit_ratio,
        "coalescing_factor": report.coalescing_factor,
        "speedup_vs_direct": direct_seconds / report.wall_seconds,
    }
    print(
        f"  direct   {metrics['direct_requests_per_second']:8.1f} req/s"
        f"   ({workload.request_count} requests serial)"
    )
    print(
        f"  service  {metrics['service_requests_per_second']:8.1f} req/s"
        f"   p95 {metrics['service_p95_latency_ms']:6.1f} ms"
        f"   p99 {metrics['service_p99_latency_ms']:6.1f} ms"
        f"   cache {metrics['cache_hit_ratio']:5.1%}"
        f"   coalesce x{metrics['coalescing_factor']:.1f}"
        f"   speedup {metrics['speedup_vs_direct']:.2f}x"
    )
    return config, metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced schedule (30 vehicles, 12 ticks) for smoke tests",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help=f"write the record to this JSON file (e.g. {default_output_path(BENCH_NAME)})",
    )
    args = parser.parse_args()

    print("async service serving vs direct per-query engine calls")
    print("(service_workload dashboard schedule; answers verified equal)")
    config, metrics = run_bench(quick=args.quick)
    if args.json:
        write_record(args.json, BENCH_NAME, config, metrics)
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
