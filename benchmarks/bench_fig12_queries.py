"""Figure 12 benchmark: existential (UQ11) and quantitative (UQ13) query time.

The paper compares the envelope-based processing (after O(N log N)
pre-processing) against a naive approach that inspects all pairwise
intersection times on every query, averaged over randomly chosen target
objects, with X = 50% for the quantitative variant.  The envelope-based
predicates are orders of magnitude faster — the same shape these benchmarks
expose at reduced population sizes.
"""

from __future__ import annotations

import pytest

from repro.core.queries import QueryContext, naive_uq11_sometime, naive_uq13_fraction

BAND = 2.0  # 4r for the default 0.5-mile uncertainty radius


@pytest.fixture(scope="module")
def prepared_context(medium_workload):
    functions, query = medium_workload
    context = QueryContext.build(
        functions, query.object_id, query.start_time, query.end_time, BAND
    )
    # Force the one-off pre-processing out of the measured region.
    context.survivors()
    return functions, query, context


def _target_ids(functions, count=5):
    step = max(1, len(functions) // count)
    return [functions[index].object_id for index in range(0, len(functions), step)][:count]


def test_fig12_envelope_based_existential_uq11(benchmark, prepared_context):
    """UQ11 on the precomputed envelope (our approach)."""
    functions, query, context = prepared_context
    targets = _target_ids(functions)

    def run():
        return [context.uq11_sometime(target) for target in targets]

    results = benchmark(run)
    assert len(results) == len(targets)
    benchmark.extra_info["queries_per_round"] = len(targets)


def test_fig12_envelope_based_quantitative_uq13(benchmark, prepared_context):
    """UQ13 (X = 50%) on the precomputed envelope (our approach)."""
    functions, query, context = prepared_context
    targets = _target_ids(functions)

    def run():
        return [context.uq13_at_least(target, 0.5) for target in targets]

    results = benchmark(run)
    assert len(results) == len(targets)


def test_fig12_naive_existential_uq11(benchmark, small_workload):
    """UQ11 via the naive all-pairwise-intersections baseline."""
    functions, query = small_workload
    target = functions[len(functions) // 2].object_id
    result = benchmark(
        naive_uq11_sometime, functions, target, query.start_time, query.end_time, BAND
    )
    assert result in (True, False)
    benchmark.extra_info["num_objects"] = len(functions)


def test_fig12_naive_quantitative_uq13(benchmark, small_workload):
    """UQ13 (X = 50%) via the naive baseline."""
    functions, query = small_workload
    target = functions[len(functions) // 2].object_id
    fraction = benchmark(
        naive_uq13_fraction, functions, target, query.start_time, query.end_time, BAND
    )
    assert 0.0 <= fraction <= 1.0
    benchmark.extra_info["num_objects"] = len(functions)
