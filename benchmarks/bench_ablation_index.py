"""Ablation A3 benchmark: index-assisted candidate pre-filtering.

Measures bulk-loading the two index substrates and probing them with a
corridor around a query trajectory, which is how the query façade narrows the
candidate set before building distance functions (the U-tree-style direction
of the paper's future work).
"""

from __future__ import annotations

import pytest

from repro.index.grid import GridIndex
from repro.index.rtree import STRRTree
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories


@pytest.fixture(scope="module")
def index_workload():
    config = RandomWaypointConfig(num_objects=500, uncertainty_radius=0.5, seed=19)
    trajectories = generate_trajectories(config)
    return trajectories[0], trajectories[1:]


def test_ablation_grid_bulk_load(benchmark, index_workload):
    """Building the uniform grid over 500 objects."""
    _, candidates = index_workload
    index = benchmark(GridIndex.covering, candidates, 32)
    assert len(index) == len(candidates)


def test_ablation_rtree_bulk_load(benchmark, index_workload):
    """STR bulk-loading the R-tree over 500 objects."""
    _, candidates = index_workload
    index = benchmark(STRRTree.from_trajectories, candidates)
    assert len(index) == len(candidates)


def test_ablation_grid_corridor_probe(benchmark, index_workload):
    """Corridor probe (5 miles around the query) against the grid."""
    query, candidates = index_workload
    index = GridIndex.covering(candidates, cells=32)
    found = benchmark(index.query_corridor, query, 5.0, 0.0, 60.0)
    assert len(found) <= len(candidates)
    benchmark.extra_info["candidates_retained"] = len(found)


def test_ablation_rtree_corridor_probe(benchmark, index_workload):
    """Corridor probe (5 miles around the query) against the R-tree."""
    query, candidates = index_workload
    index = STRRTree.from_trajectories(candidates)
    found = benchmark(index.query_corridor, query, 5.0, 0.0, 60.0)
    assert len(found) <= len(candidates)
    benchmark.extra_info["candidates_retained"] = len(found)
