"""Figure 11 benchmark: lower-envelope construction, naive vs divide-and-conquer.

The paper's Figure 11 plots construction time against the number of moving
objects (1,000-12,000) on a log scale and shows the divide-and-conquer
construction winning by orders of magnitude.  These benchmarks measure the
same two algorithms on scaled-down populations; the asymptotic gap is already
unmistakable at a few hundred objects (see ``repro.experiments.fig11`` for
the sweep that prints the full series).
"""

from __future__ import annotations

import pytest

from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.naive import naive_lower_envelope

from .conftest import build_functions


@pytest.mark.parametrize("num_objects", [50, 100, 200])
def test_fig11_divide_and_conquer_construction(benchmark, num_objects):
    """Algorithm 1 (divide-and-conquer merge of envelopes)."""
    functions, query = build_functions(num_objects)
    envelope = benchmark(
        lower_envelope, functions, query.start_time, query.end_time
    )
    assert envelope.is_contiguous
    benchmark.extra_info["num_objects"] = num_objects
    benchmark.extra_info["envelope_pieces"] = len(envelope)


@pytest.mark.parametrize("num_objects", [50, 100])
def test_fig11_naive_construction(benchmark, num_objects):
    """Naive baseline: all pairwise intersections, then a sweep."""
    functions, query = build_functions(num_objects)
    envelope = benchmark(
        naive_lower_envelope, functions, query.start_time, query.end_time
    )
    assert envelope.is_contiguous
    benchmark.extra_info["num_objects"] = num_objects
    benchmark.extra_info["envelope_pieces"] = len(envelope)
