"""Ablation A2 benchmark: envelope cost vs segments per trajectory, and tree construction.

The closing remark of Section 3.2 notes that with m segments per trajectory
the complexity bounds pick up a factor of m.  These benchmarks measure the
divide-and-conquer envelope construction as m grows, plus the full IPAC-NN
tree construction (Algorithm 3) that the continuous queries sit on.
"""

from __future__ import annotations

import pytest

from repro.core.ipacnn import build_ipac_tree
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.klevel import k_level_envelopes

from .conftest import build_functions


@pytest.mark.parametrize("segments", [1, 2, 4, 8])
def test_ablation_envelope_vs_segments_per_trajectory(benchmark, segments):
    """Envelope construction for 100 objects with 1-8 segments each."""
    functions, query = build_functions(100, segments=segments)
    envelope = benchmark(
        lower_envelope, functions, query.start_time, query.end_time
    )
    assert envelope.is_contiguous
    benchmark.extra_info["segments_per_trajectory"] = segments
    benchmark.extra_info["envelope_pieces"] = len(envelope)


def test_ablation_k_level_envelopes(benchmark, small_workload):
    """First three envelope levels (the rank-k query substrate)."""
    functions, query = small_workload
    levels = benchmark(
        k_level_envelopes, functions, query.start_time, query.end_time, 3
    )
    assert len(levels) >= 1


def test_ablation_ipac_tree_construction(benchmark, small_workload):
    """Algorithm 3: full IPAC-NN tree (band width 4r = 2 miles)."""
    functions, query = small_workload
    tree = benchmark(
        build_ipac_tree,
        functions,
        query.object_id,
        query.start_time,
        query.end_time,
        2.0,
    )
    assert tree.size() >= 1
    benchmark.extra_info["tree_nodes"] = tree.size()
    benchmark.extra_info["tree_depth"] = tree.depth()
