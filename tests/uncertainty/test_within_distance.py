"""Tests for within-distance profiles and the Rmin/Rmax pruning (Section 2.2)."""

import pytest

from repro.uncertainty.pdf import CrispPDF
from repro.uncertainty.uniform import UniformDiskPDF
from repro.uncertainty.within_distance import (
    WithinDistanceProfile,
    crisp_profile,
    effective_pruning_radius,
    integration_bounds,
    prune_candidates,
    uniform_within_distance_density,
    uniform_within_distance_probability,
    within_distance_matrix,
    within_distance_probability_uncertain_pair,
)


class TestWithinDistanceProfile:
    def test_r_min_and_r_max(self):
        profile = WithinDistanceProfile("a", 5.0, UniformDiskPDF(1.0))
        assert profile.r_min == pytest.approx(4.0)
        assert profile.r_max == pytest.approx(6.0)

    def test_r_min_clamped_at_zero(self):
        profile = WithinDistanceProfile("a", 0.5, UniformDiskPDF(1.0))
        assert profile.r_min == 0.0

    def test_probability_and_density_delegate_to_pdf(self):
        profile = WithinDistanceProfile("a", 3.0, UniformDiskPDF(1.0))
        assert profile.probability(10.0) == 1.0
        assert profile.probability(1.0) == 0.0
        assert profile.density(3.0) > 0.0

    def test_crisp_profile(self):
        profile = crisp_profile("q", 2.0)
        assert profile.r_min == profile.r_max == 2.0
        assert profile.probability(1.9) == 0.0
        assert profile.probability(2.1) == 1.0

    def test_crisp_profile_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            crisp_profile("q", -1.0)


class TestPruning:
    def make_profiles(self):
        pdf = UniformDiskPDF(1.0)
        return [
            WithinDistanceProfile("near", 2.0, pdf),
            WithinDistanceProfile("mid", 3.5, pdf),
            WithinDistanceProfile("far", 10.0, pdf),
        ]

    def test_far_object_pruned(self):
        survivors = prune_candidates(self.make_profiles())
        ids = [p.object_id for p in survivors]
        assert "far" not in ids
        assert "near" in ids

    def test_survivors_sorted_by_r_min(self):
        survivors = prune_candidates(self.make_profiles())
        r_mins = [p.r_min for p in survivors]
        assert r_mins == sorted(r_mins)

    def test_borderline_object_kept(self):
        # Rmin of "mid" (2.5) is below Rmax of "near" (3.0): keep it.
        survivors = prune_candidates(self.make_profiles())
        assert "mid" in [p.object_id for p in survivors]

    def test_empty_input(self):
        assert prune_candidates([]) == []

    def test_integration_bounds(self):
        lower, upper = integration_bounds(self.make_profiles())
        assert lower == pytest.approx(1.0)  # min Rmin (near: 2 − 1)
        assert upper == pytest.approx(3.0)  # min Rmax (near: 2 + 1)

    def test_integration_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            integration_bounds([])


class TestHelpers:
    def test_uniform_wrappers_match_pdf_methods(self):
        pdf = UniformDiskPDF(1.5)
        assert uniform_within_distance_probability(3.0, 1.5, 2.5) == pytest.approx(
            pdf.within_distance_probability(3.0, 2.5)
        )
        assert uniform_within_distance_density(3.0, 1.5, 2.5) == pytest.approx(
            pdf.within_distance_density(3.0, 2.5)
        )

    def test_within_distance_matrix_shape_and_monotonicity(self):
        import numpy as np

        profiles = [
            WithinDistanceProfile("a", 2.0, UniformDiskPDF(1.0)),
            WithinDistanceProfile("b", 4.0, UniformDiskPDF(1.0)),
        ]
        radii = np.linspace(0.0, 6.0, 13)
        matrix = within_distance_matrix(profiles, radii)
        assert matrix.shape == (2, 13)
        assert np.all(np.diff(matrix, axis=1) >= -1e-12)

    def test_effective_pruning_radius_is_4r_for_equal_uniform(self):
        pdf = UniformDiskPDF(0.5)
        assert effective_pruning_radius(pdf, pdf) == pytest.approx(2.0)  # 4·r = 2

    def test_effective_pruning_radius_with_crisp_query(self):
        assert effective_pruning_radius(UniformDiskPDF(0.5), CrispPDF()) == pytest.approx(1.0)


class TestUncertainPair:
    def test_convolution_matches_monte_carlo(self, rng):
        pdf = UniformDiskPDF(1.0)
        analytic = within_distance_probability_uncertain_pair(pdf, pdf, 2.0, 2.5)
        sampled = within_distance_probability_uncertain_pair(
            pdf, pdf, 2.0, 2.5, monte_carlo_samples=40000, rng=rng
        )
        assert analytic == pytest.approx(sampled, abs=0.02)

    def test_certainly_within(self):
        pdf = UniformDiskPDF(0.5)
        assert within_distance_probability_uncertain_pair(pdf, pdf, 1.0, 5.0) == pytest.approx(1.0)

    def test_certainly_outside(self):
        pdf = UniformDiskPDF(0.5)
        assert within_distance_probability_uncertain_pair(pdf, pdf, 10.0, 2.0) == pytest.approx(0.0)
