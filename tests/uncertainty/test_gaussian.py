"""Tests for the truncated-Gaussian location pdf."""

import numpy as np
import pytest

from repro.uncertainty.gaussian import TruncatedGaussianPDF


@pytest.fixture
def pdf() -> TruncatedGaussianPDF:
    return TruncatedGaussianPDF(radius=2.0, sigma=1.0)


class TestTruncatedGaussian:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TruncatedGaussianPDF(radius=0.0)
        with pytest.raises(ValueError):
            TruncatedGaussianPDF(radius=1.0, sigma=0.0)

    def test_default_sigma_is_half_radius(self):
        assert TruncatedGaussianPDF(radius=3.0).sigma == pytest.approx(1.5)

    def test_support_radius(self, pdf):
        assert pdf.support_radius == 2.0

    def test_density_zero_outside(self, pdf):
        assert pdf.density(2.5) == 0.0

    def test_density_peaks_at_center(self, pdf):
        assert pdf.density(0.0) > pdf.density(1.0) > pdf.density(1.9)

    def test_density_rejects_negative_radius(self, pdf):
        with pytest.raises(ValueError):
            pdf.density(-0.5)

    def test_total_mass_is_one(self, pdf):
        assert pdf.total_mass() == pytest.approx(1.0, abs=1e-6)

    def test_radial_cdf_endpoints(self, pdf):
        assert pdf.radial_cdf(0.0) == 0.0
        assert pdf.radial_cdf(2.0) == 1.0
        assert pdf.radial_cdf(5.0) == 1.0

    def test_radial_cdf_monotone(self, pdf):
        values = [pdf.radial_cdf(r) for r in np.linspace(0.0, 2.0, 21)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_radial_cdf_matches_numeric_integration(self, pdf):
        # Compare the closed form against the generic numeric default.
        numeric = super(TruncatedGaussianPDF, pdf).radial_cdf(1.2)
        assert pdf.radial_cdf(1.2) == pytest.approx(numeric, abs=2e-3)

    def test_within_distance_probability_bounds(self, pdf):
        for d in np.linspace(0.0, 5.0, 6):
            for Rd in np.linspace(0.1, 6.0, 6):
                p = pdf.within_distance_probability(float(d), float(Rd))
                assert 0.0 <= p <= 1.0

    def test_samples_inside_support(self, pdf, rng):
        samples = pdf.sample(rng, 3000)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        assert np.all(radii <= pdf.support_radius + 1e-9)

    def test_samples_concentrate_near_center(self, pdf, rng):
        samples = pdf.sample(rng, 5000)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        # Truncated Rayleigh: P(R <= sigma) = (1 − e^{−1/2}) / (1 − e^{−2}) ≈ 0.455,
        # noticeably more concentrated than the uniform disk's (1/2)² = 0.25.
        assert np.mean(radii <= 1.0) == pytest.approx(pdf.radial_cdf(1.0), abs=0.03)
        assert np.mean(radii <= 1.0) > 0.35

    def test_sample_cdf_matches_radial_cdf(self, pdf, rng):
        samples = pdf.sample(rng, 6000)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        assert np.mean(radii <= 1.5) == pytest.approx(pdf.radial_cdf(1.5), abs=0.03)
