"""Tests for the uniform-disk location pdf (Eq. 2 / Eq. 4 of the paper)."""

import math

import numpy as np
import pytest

from repro.uncertainty.uniform import UniformDiskPDF


@pytest.fixture
def pdf() -> UniformDiskPDF:
    return UniformDiskPDF(2.0)


class TestUniformDensity:
    def test_radius_must_be_positive(self):
        with pytest.raises(ValueError):
            UniformDiskPDF(0.0)

    def test_density_inside_is_constant(self, pdf):
        expected = 1.0 / (math.pi * 4.0)
        assert pdf.density(0.0) == pytest.approx(expected)
        assert pdf.density(1.9) == pytest.approx(expected)

    def test_density_outside_is_zero(self, pdf):
        assert pdf.density(2.1) == 0.0

    def test_density_rejects_negative_radius(self, pdf):
        with pytest.raises(ValueError):
            pdf.density(-0.1)

    def test_total_mass_is_one(self, pdf):
        assert pdf.total_mass() == pytest.approx(1.0)

    def test_radial_cdf(self, pdf):
        assert pdf.radial_cdf(0.0) == 0.0
        assert pdf.radial_cdf(1.0) == pytest.approx(0.25)
        assert pdf.radial_cdf(2.0) == 1.0
        assert pdf.radial_cdf(5.0) == 1.0


class TestUniformWithinDistance:
    def test_fully_covered(self, pdf):
        assert pdf.within_distance_probability(1.0, 10.0) == 1.0

    def test_fully_outside(self, pdf):
        assert pdf.within_distance_probability(10.0, 1.0) == 0.0

    def test_zero_radius_query(self, pdf):
        assert pdf.within_distance_probability(1.0, 0.0) == 0.0

    def test_matches_generic_numeric_integration(self, pdf):
        # The closed form (lens area) must agree with the base-class numeric
        # angular-coverage integral.
        generic = super(UniformDiskPDF, pdf).within_distance_probability
        for d, Rd in [(3.0, 2.0), (2.0, 1.0), (1.0, 2.0), (0.5, 1.0), (4.0, 2.5)]:
            assert pdf.within_distance_probability(d, Rd) == pytest.approx(
                generic(d, Rd), abs=2e-3
            )

    def test_monotone_in_within_radius(self, pdf):
        values = [pdf.within_distance_probability(3.0, r) for r in np.linspace(0.5, 6.0, 23)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_probability_bounds(self, pdf):
        for d in np.linspace(0.0, 6.0, 13):
            for Rd in np.linspace(0.0, 6.0, 13):
                p = pdf.within_distance_probability(float(d), float(Rd))
                assert 0.0 <= p <= 1.0

    def test_query_inside_uncertainty_zone(self, pdf):
        # Reference point at the pdf's center: P = (Rd/r)² for Rd <= r.
        assert pdf.within_distance_probability(0.0, 1.0) == pytest.approx(0.25)


class TestUniformWithinDistanceDensity:
    def test_density_matches_finite_difference(self, pdf):
        for d, Rd in [(3.0, 2.0), (3.0, 3.5), (2.0, 1.5), (1.0, 2.0)]:
            step = 1e-5
            numeric = (
                pdf.within_distance_probability(d, Rd + step)
                - pdf.within_distance_probability(d, Rd - step)
            ) / (2.0 * step)
            assert pdf.within_distance_density(d, Rd) == pytest.approx(numeric, abs=1e-3)

    def test_density_zero_outside_support(self, pdf):
        assert pdf.within_distance_density(10.0, 1.0) == 0.0
        assert pdf.within_distance_density(1.0, 10.0) == 0.0

    def test_density_non_negative(self, pdf):
        for d in np.linspace(0.0, 5.0, 11):
            for Rd in np.linspace(0.1, 6.0, 11):
                assert pdf.within_distance_density(float(d), float(Rd)) >= 0.0


class TestUniformSampling:
    def test_samples_inside_disk(self, pdf, rng):
        samples = pdf.sample(rng, 2000)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        assert np.all(radii <= pdf.radius + 1e-12)

    def test_sample_mean_near_center(self, pdf, rng):
        samples = pdf.sample(rng, 5000)
        assert abs(samples[:, 0].mean()) < 0.1
        assert abs(samples[:, 1].mean()) < 0.1

    def test_sample_radial_cdf_matches(self, pdf, rng):
        samples = pdf.sample(rng, 5000)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        empirical = np.mean(radii <= 1.0)
        assert empirical == pytest.approx(pdf.radial_cdf(1.0), abs=0.03)

    def test_negative_count_rejected(self, pdf, rng):
        with pytest.raises(ValueError):
            pdf.sample(rng, -1)
