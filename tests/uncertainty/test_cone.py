"""Tests for the cone pdf (Eq. 7 of the paper)."""

import math

import numpy as np
import pytest

from repro.uncertainty.cone import ConePDF


@pytest.fixture
def cone() -> ConePDF:
    return ConePDF(uncertainty_radius=1.0)


class TestConePDF:
    def test_radius_validation(self):
        with pytest.raises(ValueError):
            ConePDF(0.0)

    def test_support_is_twice_the_radius(self, cone):
        assert cone.support_radius == 2.0

    def test_apex_height_matches_paper(self, cone):
        # Example 4: height 3/(4πr²) for r = 1.
        assert cone.apex_height == pytest.approx(3.0 / (4.0 * math.pi))
        assert cone.density(0.0) == pytest.approx(cone.apex_height)

    def test_density_linear_decay(self, cone):
        assert cone.density(1.0) == pytest.approx(cone.apex_height * 0.5)
        assert cone.density(2.0) == 0.0
        assert cone.density(3.0) == 0.0

    def test_density_rejects_negative(self, cone):
        with pytest.raises(ValueError):
            cone.density(-0.1)

    def test_total_mass_is_one(self, cone):
        assert cone.total_mass() == pytest.approx(1.0, abs=1e-6)

    def test_radial_cdf_endpoints_and_monotonicity(self, cone):
        assert cone.radial_cdf(0.0) == 0.0
        assert cone.radial_cdf(2.0) == 1.0
        values = [cone.radial_cdf(r) for r in np.linspace(0.0, 2.0, 21)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_radial_cdf_matches_numeric_default(self, cone):
        numeric = super(ConePDF, cone).radial_cdf(1.3)
        assert cone.radial_cdf(1.3) == pytest.approx(numeric, abs=2e-3)

    def test_samples_follow_exact_difference_distribution(self, cone, rng):
        # Samples are drawn as the difference of two uniform-disk samples, so
        # they must stay within 2r and be centered at the origin.
        samples = cone.sample(rng, 5000)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        assert np.all(radii <= 2.0 + 1e-12)
        assert abs(samples[:, 0].mean()) < 0.05
        assert abs(samples[:, 1].mean()) < 0.05

    def test_scaling_with_radius(self):
        small = ConePDF(0.5)
        assert small.support_radius == 1.0
        assert small.apex_height == pytest.approx(3.0 / (4.0 * math.pi * 0.25))
