"""Tests for the RadialPDF base machinery, CrispPDF and TabulatedRadialPDF."""

import numpy as np
import pytest

from repro.uncertainty.pdf import CrispPDF, TabulatedRadialPDF
from repro.uncertainty.uniform import UniformDiskPDF


class TestCrispPDF:
    def test_support_radius_is_zero(self):
        assert CrispPDF().support_radius == 0.0

    def test_density_is_undefined(self):
        with pytest.raises(ValueError):
            CrispPDF().density(0.0)

    def test_radial_cdf_is_step(self):
        crisp = CrispPDF()
        assert crisp.radial_cdf(0.0) == 1.0
        assert crisp.radial_cdf(5.0) == 1.0

    def test_within_distance_probability_is_indicator(self):
        crisp = CrispPDF()
        assert crisp.within_distance_probability(2.0, 3.0) == 1.0
        assert crisp.within_distance_probability(3.0, 2.0) == 0.0

    def test_within_distance_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            CrispPDF().within_distance_probability(1.0, -1.0)

    def test_samples_are_all_at_center(self, rng):
        samples = CrispPDF().sample(rng, 7)
        assert samples.shape == (7, 2)
        assert np.all(samples == 0.0)

    def test_total_mass(self):
        assert CrispPDF().total_mass() == 1.0

    def test_rotational_symmetry_flag(self):
        assert CrispPDF().is_rotationally_symmetric()


class TestTabulatedRadialPDF:
    def make_triangle(self) -> TabulatedRadialPDF:
        radii = np.linspace(0.0, 2.0, 51)
        densities = np.maximum(0.0, 1.0 - radii / 2.0)
        return TabulatedRadialPDF(radii, densities)

    def test_normalization_on_construction(self):
        pdf = self.make_triangle()
        assert pdf.total_mass() == pytest.approx(1.0, abs=1e-3)

    def test_density_interpolation_and_cutoff(self):
        pdf = self.make_triangle()
        assert pdf.density(0.0) > pdf.density(1.0) > 0.0
        assert pdf.density(2.5) == 0.0

    def test_density_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            self.make_triangle().density(-0.1)

    def test_grid_is_a_copy(self):
        pdf = self.make_triangle()
        grid = pdf.grid
        grid[0] = 99.0
        assert pdf.grid[0] == 0.0

    def test_validation_of_malformed_inputs(self):
        with pytest.raises(ValueError):
            TabulatedRadialPDF(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            TabulatedRadialPDF(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            TabulatedRadialPDF(np.array([0.0, 1.0]), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            TabulatedRadialPDF(np.array([0.0, 1.0]), np.array([0.0, 0.0]))

    def test_within_distance_probability_generic_path(self):
        pdf = self.make_triangle()
        assert pdf.within_distance_probability(0.0, 5.0) == 1.0
        assert pdf.within_distance_probability(10.0, 1.0) == 0.0
        partial = pdf.within_distance_probability(1.5, 1.0)
        assert 0.0 < partial < 1.0


class TestGenericNumericDefaults:
    def test_generic_radial_cdf_matches_analytic(self):
        uniform = UniformDiskPDF(2.0)
        numeric = super(UniformDiskPDF, uniform).radial_cdf(1.0)
        assert numeric == pytest.approx(uniform.radial_cdf(1.0), abs=2e-3)

    def test_generic_sampling_respects_support(self, rng):
        uniform = UniformDiskPDF(1.5)
        samples = super(UniformDiskPDF, uniform).sample(rng, 500)
        radii = np.hypot(samples[:, 0], samples[:, 1])
        assert np.all(radii <= 1.5 + 1e-9)

    def test_generic_within_distance_density_non_negative(self):
        uniform = UniformDiskPDF(1.0)
        generic_density = super(UniformDiskPDF, uniform).within_distance_density
        for Rd in np.linspace(0.5, 4.0, 8):
            assert generic_density(2.0, float(Rd)) >= 0.0
