"""Tests for instantaneous NN probabilities (Eq. 5 / 6)."""

import numpy as np
import pytest

from repro.uncertainty.nn_probability import (
    monte_carlo_nn_probabilities,
    nn_probabilities,
    probability_mass_deficit,
    rank_by_nn_probability,
)
from repro.uncertainty.pdf import CrispPDF
from repro.uncertainty.uniform import UniformDiskPDF
from repro.uncertainty.within_distance import WithinDistanceProfile


def make_profiles(distances, radius=1.0):
    pdf = UniformDiskPDF(radius)
    return [
        WithinDistanceProfile(f"obj-{index}", distance, pdf)
        for index, distance in enumerate(distances)
    ]


class TestNNProbabilities:
    def test_single_candidate_has_probability_one(self):
        results = nn_probabilities(make_profiles([3.0]))
        assert results["obj-0"].exclusive == pytest.approx(1.0)

    def test_clearly_nearer_object_dominates(self):
        results = nn_probabilities(make_profiles([2.0, 8.0]))
        assert results["obj-0"].exclusive > 0.99
        assert results["obj-1"].exclusive == pytest.approx(0.0, abs=1e-6)

    def test_symmetric_objects_split_evenly(self):
        results = nn_probabilities(make_profiles([3.0, 3.0]))
        assert results["obj-0"].exclusive == pytest.approx(
            results["obj-1"].exclusive, abs=1e-6
        )
        assert results["obj-0"].exclusive == pytest.approx(0.5, abs=0.02)

    def test_probabilities_are_valid_and_sum_below_one(self):
        results = nn_probabilities(make_profiles([2.0, 2.5, 3.0, 6.0]))
        total = sum(result.exclusive for result in results.values())
        assert 0.0 < total <= 1.0 + 1e-9
        for result in results.values():
            assert 0.0 <= result.exclusive <= 1.0

    def test_closer_object_has_higher_probability(self):
        results = nn_probabilities(make_profiles([2.0, 2.6, 3.4]))
        assert (
            results["obj-0"].exclusive
            > results["obj-1"].exclusive
            > results["obj-2"].exclusive
        )

    def test_pruned_object_gets_zero(self):
        results = nn_probabilities(make_profiles([2.0, 20.0]))
        assert results["obj-1"].exclusive == 0.0

    def test_joint_term_reduces_deficit(self):
        profiles = make_profiles([2.0, 2.1, 2.2])
        without = nn_probabilities(profiles, include_joint=False)
        with_joint = nn_probabilities(profiles, include_joint=True)
        deficit_without = probability_mass_deficit(without)
        deficit_with = probability_mass_deficit(with_joint, use_total=True)
        assert deficit_without > 0.0
        assert deficit_with < deficit_without

    def test_crisp_profiles_degenerate_tie(self):
        profiles = [
            WithinDistanceProfile("a", 2.0, CrispPDF()),
            WithinDistanceProfile("b", 2.0, CrispPDF()),
        ]
        results = nn_probabilities(profiles)
        assert results["a"].exclusive == pytest.approx(0.5)
        assert results["b"].exclusive == pytest.approx(0.5)

    def test_empty_input(self):
        assert nn_probabilities([]) == {}


class TestRanking:
    def test_rank_matches_distance_order(self):
        ranking = rank_by_nn_probability(make_profiles([4.0, 2.0, 3.0]))
        assert ranking[0] == "obj-1"
        assert ranking[1] == "obj-2"
        assert ranking[2] == "obj-0"

    def test_rank_is_stable_for_ties(self):
        ranking = rank_by_nn_probability(make_profiles([10.0, 10.0]))
        assert set(ranking) == {"obj-0", "obj-1"}


class TestMonteCarlo:
    def test_agrees_with_numeric_probabilities(self, rng):
        distances = [2.0, 2.5, 4.0]
        profiles = make_profiles(distances)
        numeric = nn_probabilities(profiles, grid_size=512)
        sampled = monte_carlo_nn_probabilities(
            [f"obj-{i}" for i in range(3)],
            np.array([[d, 0.0] for d in distances]),
            [UniformDiskPDF(1.0)] * 3,
            np.array([0.0, 0.0]),
            CrispPDF(),
            samples=40000,
            rng=rng,
        )
        for object_id in sampled:
            assert sampled[object_id] == pytest.approx(
                numeric[object_id].exclusive, abs=0.03
            )

    def test_uncertain_query_probabilities_sum_to_one(self, rng):
        sampled = monte_carlo_nn_probabilities(
            ["a", "b"],
            np.array([[2.0, 0.0], [3.0, 0.0]]),
            [UniformDiskPDF(1.0)] * 2,
            np.array([0.0, 0.0]),
            UniformDiskPDF(1.0),
            samples=5000,
            rng=rng,
        )
        assert sum(sampled.values()) == pytest.approx(1.0)

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            monte_carlo_nn_probabilities(
                ["a"],
                np.zeros((2, 2)),
                [UniformDiskPDF(1.0)],
                np.zeros(2),
                CrispPDF(),
                samples=10,
                rng=rng,
            )
