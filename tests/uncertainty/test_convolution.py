"""Tests for the convolution transformation (Section 3.1)."""

import numpy as np
import pytest

from repro.geometry.point import Point2D
from repro.uncertainty.cone import ConePDF
from repro.uncertainty.convolution import (
    convolution_centroid_offset,
    convolve_radial_pdfs,
    difference_pdf,
    uniform_difference_pdf,
)
from repro.uncertainty.gaussian import TruncatedGaussianPDF
from repro.uncertainty.pdf import CrispPDF, TabulatedRadialPDF
from repro.uncertainty.uniform import UniformDiskPDF


class TestUniformDifferencePDF:
    def test_support_is_twice_the_radius(self):
        diff = uniform_difference_pdf(1.0)
        assert diff.support_radius == pytest.approx(2.0)

    def test_mass_is_one(self):
        diff = uniform_difference_pdf(1.0)
        assert diff.total_mass() == pytest.approx(1.0, abs=1e-3)

    def test_density_decreases_with_radius(self):
        diff = uniform_difference_pdf(1.0)
        values = [diff.density(r) for r in np.linspace(0.0, 2.0, 11)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_close_to_paper_cone_approximation(self):
        # The paper treats uniform⊛uniform as a cone; the exact profile is the
        # normalized lens area.  They agree at the endpoints and stay within
        # a modest relative band in between.
        exact = uniform_difference_pdf(1.0)
        cone = ConePDF(1.0)
        assert exact.density(0.0) == pytest.approx(cone.density(0.0), rel=0.35)
        assert exact.density(1.9) == pytest.approx(cone.density(1.9), abs=0.05)
        # Both integrate to one, so the cdfs must also be close.
        for r in (0.5, 1.0, 1.5):
            assert exact.radial_cdf(r) == pytest.approx(cone.radial_cdf(r), abs=0.1)

    def test_matches_monte_carlo_difference(self, rng):
        exact = uniform_difference_pdf(1.0)
        samples_a = UniformDiskPDF(1.0).sample(rng, 20000)
        samples_b = UniformDiskPDF(1.0).sample(rng, 20000)
        diffs = samples_a - samples_b
        radii = np.hypot(diffs[:, 0], diffs[:, 1])
        assert np.mean(radii <= 1.0) == pytest.approx(exact.radial_cdf(1.0), abs=0.02)


class TestNumericConvolution:
    def test_crisp_operands_short_circuit(self):
        uniform = UniformDiskPDF(1.0)
        assert convolve_radial_pdfs(CrispPDF(), uniform) is uniform
        assert convolve_radial_pdfs(uniform, CrispPDF()) is uniform

    def test_support_is_sum_of_supports(self):
        result = convolve_radial_pdfs(
            UniformDiskPDF(1.0), UniformDiskPDF(0.5), samples=64, angular_samples=64
        )
        assert result.support_radius == pytest.approx(1.5)

    def test_result_is_normalized(self):
        result = convolve_radial_pdfs(
            UniformDiskPDF(1.0), UniformDiskPDF(1.0), samples=64, angular_samples=64
        )
        assert result.total_mass() == pytest.approx(1.0, abs=1e-2)

    def test_numeric_uniform_convolution_matches_exact(self):
        numeric = convolve_radial_pdfs(
            UniformDiskPDF(1.0), UniformDiskPDF(1.0), samples=96, angular_samples=128
        )
        exact = uniform_difference_pdf(1.0)
        for r in (0.2, 0.8, 1.4):
            assert numeric.density(r) == pytest.approx(exact.density(r), rel=0.1, abs=0.01)

    def test_sample_count_validation(self):
        with pytest.raises(ValueError):
            convolve_radial_pdfs(UniformDiskPDF(1.0), UniformDiskPDF(1.0), samples=4)


class TestDifferencePDF:
    def test_crisp_query_returns_object_pdf(self):
        uniform = UniformDiskPDF(1.0)
        assert difference_pdf(uniform, CrispPDF()) is uniform

    def test_equal_uniform_disks_use_exact_profile(self):
        result = difference_pdf(UniformDiskPDF(1.0), UniformDiskPDF(1.0))
        assert isinstance(result, TabulatedRadialPDF)
        assert result.support_radius == pytest.approx(2.0)

    def test_mixed_families_fall_back_to_numeric(self):
        result = difference_pdf(
            UniformDiskPDF(1.0), TruncatedGaussianPDF(1.0), samples=48
        )
        assert result.support_radius == pytest.approx(2.0)
        assert result.total_mass() == pytest.approx(1.0, abs=5e-2)

    def test_centroid_offset_property(self):
        # Property 1: the centroid of the convolution is the sum of centroids.
        centroid = convolution_centroid_offset(Point2D(1.0, 2.0), Point2D(-3.0, 0.5))
        assert centroid.as_tuple() == (-2.0, 2.5)
