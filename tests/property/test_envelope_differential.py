"""Differential oracle: vectorized kernels are bit-identical to the scalar paths.

Every vectorized kernel introduced for the envelope hot path —

* the kinetic k-level sweep (:func:`repro.geometry.envelope.bulk.k_level_envelopes_bulk`),
* the batched band classifier (:func:`repro.core.pruning.band_intervals_batch`
  with ``kernel="vector"``), and
* the bulk hyperbola-coefficient construction
  (:func:`repro.trajectories.difference.difference_distance_functions_bulk`)

— keeps its original scalar implementation pinned as the oracle and promises
*bit-identical* output: not approximately equal, byte-for-byte the same
floats, piece boundaries, and owner ids.  These properties drive both sides
with adversarial inputs (tangent hyperbolas, exact ties at breakpoints,
sub-tolerance gaps, zero-length segments, coincident trajectories) and
compare with ``==``, never with a tolerance.

The closing end-to-end section runs planned UQ2x/UQ4x statements under the
vector kernel against the pinned naive interpreter forced onto the scalar
kernel, so the equivalence is checked through the full planner/engine stack,
not just at the kernel boundary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import pruning
from repro.core.pruning import band_intervals, band_intervals_batch
from repro.geometry.envelope.bulk import k_level_envelopes_bulk
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.env2 import pairwise_envelope
from repro.geometry.envelope.hyperbola import (
    DistanceFunction,
    Hyperbola,
    HyperbolaPiece,
)
from repro.geometry.envelope.klevel import (
    k_level_envelopes,
    k_level_envelopes_scalar,
)
from repro.trajectories import difference
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory
from repro.uncertainty.uniform import UniformDiskPDF
from repro.query_language import QueryExecutor, execute_query_naive

T_LO, T_HI = 0.0, 10.0

coordinate = st.floats(
    min_value=-25.0, max_value=25.0, allow_nan=False, allow_infinity=False
)
velocity = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)
# Exactly-representable offsets so algebraic identities (double roots,
# shared breakpoints) survive float arithmetic without rounding.
dyadic_time = st.sampled_from([1.0, 2.0, 2.5, 4.0, 5.0, 6.25, 8.0])


def _motion(object_id, x0, y0, vx, vy):
    return DistanceFunction.single_segment(object_id, x0, y0, vx, vy, T_LO, T_HI)


# ---------------------------------------------------------------------------
# Adversarial function families.
# ---------------------------------------------------------------------------


@st.composite
def base_functions(draw, min_size=2, max_size=6):
    """Random single-segment distance functions with canonical-sortable ids."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    functions = []
    for index in range(count):
        x0, y0 = draw(coordinate), draw(coordinate)
        vx, vy = draw(velocity), draw(velocity)
        functions.append(_motion(f"f{index:02d}", x0, y0, vx, vy))
    return functions


@st.composite
def adversarial_functions(draw):
    """Function sets stressing the degeneracies the kernels must survive.

    Families:

    * ``plain`` — generic position: random crossing hyperbolas.
    * ``tangent`` — ``g = f + (t - q)^2`` for dyadic ``q``: the difference
      quadratic has an exact double root at ``t = q`` (discriminant is
      bitwise zero), probing the tangency guards.
    * ``tie`` — ``g = f + s (t - r1)(t - r2)``: exact crossings at the
      drawn dyadic times, landing breakpoints on top of each other.
    * ``subtol`` — a function rebuilt with an interior piece shorter than
      the time tolerance (a sub-tolerance gap between breakpoints).
    * ``zero`` — a function carrying an exactly zero-length piece.
    * ``coincident`` — a function duplicated under a different id: the
      curves tie everywhere and only input order breaks the tie.
    """
    functions = draw(base_functions())
    family = draw(
        st.sampled_from(["plain", "tangent", "tie", "subtol", "zero", "coincident"])
    )
    first = functions[0]
    curve = first.pieces[0].curve
    if family == "tangent":
        q = draw(dyadic_time)
        tangent = Hyperbola(curve.a + 1.0, curve.b - 2.0 * q, curve.c + q * q)
        functions.append(
            DistanceFunction("t-tan", [HyperbolaPiece(T_LO, T_HI, tangent)])
        )
    elif family == "tie":
        r1 = draw(dyadic_time)
        r2 = draw(dyadic_time)
        s = draw(st.sampled_from([0.5, 1.0, 2.0]))
        crossing = Hyperbola(
            curve.a + s, curve.b - s * (r1 + r2), curve.c + s * r1 * r2
        )
        functions.append(
            DistanceFunction("t-tie", [HyperbolaPiece(T_LO, T_HI, crossing)])
        )
    elif family == "subtol":
        tb = draw(dyadic_time)
        sliver = 5e-10  # below TIME_TOLERANCE
        functions.append(
            DistanceFunction(
                "t-sub",
                [
                    HyperbolaPiece(T_LO, tb, curve),
                    HyperbolaPiece(tb, tb + sliver, curve),
                    HyperbolaPiece(tb + sliver, T_HI, curve),
                ],
            )
        )
    elif family == "zero":
        tb = draw(dyadic_time)
        functions.append(
            DistanceFunction(
                "t-zero",
                [
                    HyperbolaPiece(T_LO, tb, curve),
                    HyperbolaPiece(tb, tb, curve),
                    HyperbolaPiece(tb, T_HI, curve),
                ],
            )
        )
    elif family == "coincident":
        functions.append(DistanceFunction("t-coi", list(first.pieces)))
    return functions


def _canonical(functions):
    """The canonical order every kernel layer sorts into."""
    return sorted(functions, key=lambda f: str(f.object_id))


# ---------------------------------------------------------------------------
# Bit-identity helpers — every comparison is exact, never a tolerance.
# ---------------------------------------------------------------------------


def assert_identical_envelopes(vectorized, scalar):
    assert len(vectorized.pieces) == len(scalar.pieces)
    for left, right in zip(vectorized.pieces, scalar.pieces):
        assert left.object_id == right.object_id
        assert left.t_start == right.t_start
        assert left.t_end == right.t_end


def assert_identical_functions(vectorized, scalar):
    assert vectorized.object_id == scalar.object_id
    assert len(vectorized.pieces) == len(scalar.pieces)
    for left, right in zip(vectorized.pieces, scalar.pieces):
        assert left.t_start == right.t_start
        assert left.t_end == right.t_end
        assert left.curve.a == right.curve.a
        assert left.curve.b == right.curve.b
        assert left.curve.c == right.curve.c


# ---------------------------------------------------------------------------
# Envelope and k-level kernels.
# ---------------------------------------------------------------------------


class TestEnvelopeKernels:
    @given(functions=adversarial_functions())
    def test_lower_envelope_bit_identical(self, functions):
        vectorized = k_level_envelopes(
            functions, T_LO, T_HI, max_levels=1, kernel="vector"
        )
        scalar = lower_envelope(_canonical(functions), T_LO, T_HI)
        assert_identical_envelopes(vectorized.level(1), scalar)

    @given(
        x0=coordinate, y0=coordinate, vx=velocity, vy=velocity, q=dyadic_time
    )
    def test_pairwise_envelope_bit_identical(self, x0, y0, vx, vy, q):
        first = _motion("a", x0, y0, vx, vy)
        tangent = Hyperbola(
            first.pieces[0].curve.a + 1.0,
            first.pieces[0].curve.b - 2.0 * q,
            first.pieces[0].curve.c + q * q,
        )
        second = DistanceFunction("b", [HyperbolaPiece(T_LO, T_HI, tangent)])
        vectorized = k_level_envelopes(
            [first, second], T_LO, T_HI, max_levels=1, kernel="vector"
        )
        scalar = pairwise_envelope(first, second, T_LO, T_HI)
        assert_identical_envelopes(vectorized.level(1), scalar)

    @given(
        functions=adversarial_functions(),
        max_levels=st.integers(min_value=1, max_value=4),
    )
    def test_k_level_stack_bit_identical(self, functions, max_levels):
        vectorized = k_level_envelopes(
            functions, T_LO, T_HI, max_levels=max_levels, kernel="vector"
        )
        scalar = k_level_envelopes_scalar(
            functions, T_LO, T_HI, max_levels=max_levels
        )
        assert len(vectorized) == len(scalar)
        for level in range(1, len(scalar) + 1):
            assert_identical_envelopes(
                vectorized.level(level), scalar.level(level)
            )

    def test_kinetic_sweep_engages_without_fallback(self):
        # A well-conditioned arrangement must be served by the sweep
        # itself: k_level_envelopes_bulk raising DegenerateArrangement
        # here would mean the vector kernel silently degenerated into
        # the scalar cascade for ordinary inputs.  (The shared
        # crossing_functions fixture is unsuitable: all three of its
        # crossings land at exactly t = 5, a genuine degeneracy.)
        functions = [
            _motion("a", 1.0, 0.0, 0.8, 0.0),
            _motion("b", 9.0, 0.0, -0.9, 0.0),
            _motion("c", 0.0, 5.0, 0.0, 0.0),
        ]
        ordered = _canonical(functions)
        levels = k_level_envelopes_bulk(ordered, T_LO, T_HI, len(ordered))
        scalar = k_level_envelopes_scalar(functions, T_LO, T_HI)
        assert len(levels) == len(scalar)
        for index, level in enumerate(levels, start=1):
            assert_identical_envelopes(level, scalar.level(index))


# ---------------------------------------------------------------------------
# Band-interval kernel.
# ---------------------------------------------------------------------------


class TestBandKernel:
    @given(
        functions=adversarial_functions(),
        band_width=st.sampled_from([0.5, 2.0, 8.0]),
    )
    def test_band_intervals_batch_bit_identical(self, functions, band_width):
        envelope = lower_envelope(functions, T_LO, T_HI)
        vectorized = band_intervals_batch(
            functions, envelope, band_width, T_LO, T_HI, kernel="vector"
        )
        scalar = band_intervals_batch(
            functions, envelope, band_width, T_LO, T_HI, kernel="scalar"
        )
        assert vectorized == scalar

    @given(functions=base_functions(min_size=3, max_size=6))
    def test_single_call_matches_batch_row(self, functions):
        envelope = lower_envelope(functions, T_LO, T_HI)
        for kernel in ("vector", "scalar"):
            batch = band_intervals_batch(
                functions, envelope, 2.0, T_LO, T_HI, kernel=kernel
            )
            for position, function in enumerate(functions):
                single = band_intervals(
                    function, envelope, 2.0, T_LO, T_HI, kernel=kernel
                )
                assert single == batch[position]

    def test_vector_fast_path_engages(self, crossing_functions, monkeypatch):
        # Single-curve candidates over a well-separated envelope must be
        # classified by the batched rows, not the per-candidate fallback.
        envelope = lower_envelope(crossing_functions, T_LO, T_HI)
        scalar = band_intervals_batch(
            crossing_functions, envelope, 2.0, T_LO, T_HI, kernel="scalar"
        )
        calls = []
        original = pruning._band_rows
        monkeypatch.setattr(
            pruning,
            "_band_rows",
            lambda *args: calls.append(args) or original(*args),
        )
        vectorized = band_intervals_batch(
            crossing_functions, envelope, 2.0, T_LO, T_HI, kernel="vector"
        )
        assert vectorized == scalar
        assert not calls, "vector band kernel fell back to _band_rows"


# ---------------------------------------------------------------------------
# Bulk difference-function construction.
# ---------------------------------------------------------------------------

SAMPLE_TIMES = (0.0, 4.0, 10.0)


@st.composite
def fleets(draw, min_size=3, max_size=6):
    """Fleets with zero-length legs, edge samples, and coincident twins."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    radius = draw(st.sampled_from([0.1, 0.4]))
    pdf = UniformDiskPDF(radius)
    trajectories = []
    for index in range(count):
        style = draw(
            st.sampled_from(["plain", "plain", "dup", "edge", "outside"])
        )
        if style == "dup":
            # A duplicated timestamp: a zero-length leg mid-trajectory.
            times = (0.0, 4.0, 4.0, 10.0)
        elif style == "edge":
            # Samples landing exactly on the window boundaries.
            times = (0.0, 0.0, 10.0)
        elif style == "outside":
            times = (-5.0, 5.0, 15.0)
        else:
            times = SAMPLE_TIMES
        samples = [
            (draw(coordinate), draw(coordinate), t) for t in times
        ]
        trajectories.append(
            UncertainTrajectory(f"o{index}", samples, radius, pdf)
        )
    if draw(st.booleans()):
        # A coincident twin of the first trajectory under another id.
        twin = trajectories[0]
        trajectories.append(
            UncertainTrajectory(
                "o-twin",
                [(s.x, s.y, s.t) for s in twin.samples],
                radius,
                pdf,
            )
        )
    return MovingObjectsDatabase(trajectories)


class TestBulkDifferenceConstruction:
    @given(mod=fleets(), window=st.sampled_from([(0.0, 10.0), (1.0, 9.0), (2.5, 6.25)]))
    def test_coefficients_bit_identical(self, mod, window):
        t_lo, t_hi = window
        query_id = next(iter(mod.object_ids))
        vectorized = mod.distance_functions(query_id, t_lo, t_hi, kernel="vector")
        scalar = mod.distance_functions(query_id, t_lo, t_hi, kernel="scalar")
        assert len(vectorized) == len(scalar)
        for left, right in zip(vectorized, scalar):
            assert_identical_functions(left, right)

    def test_bulk_path_engages(self, small_mod, monkeypatch):
        # Single-leg candidates over the full window must be built from
        # the packed columns; a fall back to the per-candidate scalar
        # builder would erase the batching entirely.
        query_id = next(iter(small_mod.object_ids))
        t_lo, t_hi = small_mod.common_time_span()
        scalar = small_mod.distance_functions(query_id, t_lo, t_hi, kernel="scalar")
        calls = []
        original = difference.difference_distance_function
        monkeypatch.setattr(
            difference,
            "difference_distance_function",
            lambda *args, **kwargs: calls.append(args)
            or original(*args, **kwargs),
        )
        vectorized = small_mod.distance_functions(
            query_id, t_lo, t_hi, kernel="vector"
        )
        for left, right in zip(vectorized, scalar):
            assert_identical_functions(left, right)
        assert not calls, "bulk construction fell back to the scalar builder"


# ---------------------------------------------------------------------------
# End-to-end: planned statements under the vector kernel vs the naive
# interpreter forced onto the scalar kernel.
# ---------------------------------------------------------------------------


def _uq_statements(query_id, target_id, t_lo, t_hi):
    """One UQ2x (targeted) and one UQ4x (open) statement per variant."""
    window = f"TIME IN [{t_lo}, {t_hi}]"
    return [
        # UQ2x: rank-k with an explicit target (Category 2).
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND RANK_NN(T, '{query_id}', TIME) <= 2 AND T = '{target_id}'",
        f"SELECT T FROM MOD WHERE FORALL {window} "
        f"AND RANK_NN(T, '{query_id}', TIME) <= 3 AND T = '{target_id}'",
        # UQ4x: open rank-k (Category 4).
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND RANK_NN(T, '{query_id}', TIME) <= 2",
        f"SELECT T FROM MOD WHERE FORALL {window} "
        f"AND RANK_NN(T, '{query_id}', TIME) <= 2",
        f"SELECT T FROM MOD WHERE FRACTION {window} >= 0.25 "
        f"AND RANK_NN(T, '{query_id}', TIME) <= 3",
    ]


class TestEndToEndKernelEquivalence:
    def test_planned_vector_answers_equal_scalar_naive_answers(
        self, small_mod, monkeypatch
    ):
        ids = sorted(small_mod.object_ids, key=str)
        t_lo, t_hi = small_mod.common_time_span()
        texts = _uq_statements(ids[0], ids[1], t_lo, t_hi)

        monkeypatch.setenv("REPRO_ENVELOPE_KERNEL", "vector")
        executor = QueryExecutor(small_mod)
        planned = executor.execute_many(texts)

        monkeypatch.setenv("REPRO_ENVELOPE_KERNEL", "scalar")
        for position, text in enumerate(texts):
            oracle = execute_query_naive(text, small_mod)
            assert planned[position].object_ids == oracle.object_ids, (
                f"vector-planned answer diverged from the scalar oracle:\n"
                f"{text}\nplanned={planned[position].object_ids}\n"
                f"oracle ={oracle.object_ids}"
            )

    def test_probability_statements_agree_across_kernels(
        self, tiny_mod, monkeypatch
    ):
        t_lo, t_hi = tiny_mod.common_time_span()
        window = f"TIME IN [{t_lo}, {t_hi}]"
        texts = [
            f"SELECT T FROM MOD WHERE EXISTS {window} "
            f"AND PROBABILITY_NN(T, 'q', TIME) > 0",
            f"SELECT T FROM MOD WHERE FORALL {window} "
            f"AND PROBABILITY_NN(T, 'q', TIME) > 0",
            f"SELECT T FROM MOD WHERE EXISTS {window} "
            f"AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'near'",
        ]
        answers = {}
        for kernel in ("vector", "scalar"):
            monkeypatch.setenv("REPRO_ENVELOPE_KERNEL", kernel)
            executor = QueryExecutor(tiny_mod)
            answers[kernel] = [
                result.object_ids for result in executor.execute_many(texts)
            ]
        assert answers["vector"] == answers["scalar"]


@pytest.mark.slow
class TestShardedKernelEquivalence:
    """The differential contract holds through the sharded backends.

    The CI perf job runs this class (``-m slow``) with the process
    backend included; the default profile keeps it in the regular run
    too, since a 16-object fleet shards in well under a second on the
    serial and thread backends.
    """

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sharded_vector_answers_equal_scalar_naive_answers(
        self, backend, monkeypatch
    ):
        from repro.parallel import ShardedEngine
        from repro.query_language import CostModel

        config_mod = MovingObjectsDatabase(
            [
                UncertainTrajectory(
                    f"s{index}",
                    [
                        (float(index), 0.0, 0.0),
                        (float(index) + 3.0, 5.0, 5.0),
                        (float(index), 10.0, 10.0),
                    ],
                    0.3,
                    UniformDiskPDF(0.3),
                )
                for index in range(10)
            ]
        )
        t_lo, t_hi = config_mod.common_time_span()
        texts = _uq_statements("s0", "s1", t_lo, t_hi)

        monkeypatch.setenv("REPRO_ENVELOPE_KERNEL", "vector")
        with ShardedEngine(config_mod, num_shards=2, backend=backend) as sharded:
            executor = QueryExecutor(
                config_mod,
                sharded=sharded,
                cost_model=CostModel(sharded_min_group=2),
            )
            planned = executor.execute_many(texts)

        monkeypatch.setenv("REPRO_ENVELOPE_KERNEL", "scalar")
        for position, text in enumerate(texts):
            oracle = execute_query_naive(text, config_mod)
            assert planned[position].object_ids == oracle.object_ids
