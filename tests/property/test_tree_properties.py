"""Property-based tests for the IPAC-NN tree construction (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.ipacnn import build_ipac_tree
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.hyperbola import DistanceFunction

T_LO, T_HI = 0.0, 10.0

coordinate = st.floats(min_value=-25.0, max_value=25.0, allow_nan=False, allow_infinity=False)
velocity = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)
band_widths = st.floats(min_value=0.5, max_value=8.0, allow_nan=False, allow_infinity=False)


@st.composite
def function_sets(draw, min_size=2, max_size=6):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    return [
        DistanceFunction.single_segment(
            f"f{index}",
            draw(coordinate),
            draw(coordinate),
            draw(velocity),
            draw(velocity),
            T_LO,
            T_HI,
        )
        for index in range(count)
    ]


@settings(max_examples=25, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_level1_nodes_tile_the_window_with_the_envelope_owners(functions, band):
    tree = build_ipac_tree(functions, "q", T_LO, T_HI, band)
    envelope = lower_envelope(functions, T_LO, T_HI)
    level1 = tree.nodes_at_level(1)
    assert [node.object_id for node in level1] == envelope.owner_ids
    assert abs(level1[0].t_start - T_LO) < 1e-9
    assert abs(level1[-1].t_end - T_HI) < 1e-9
    for previous, current in zip(level1, level1[1:]):
        assert abs(previous.t_end - current.t_start) < 1e-6


@settings(max_examples=25, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_children_are_nested_and_strictly_deeper(functions, band):
    tree = build_ipac_tree(functions, "q", T_LO, T_HI, band)
    for node in tree.walk():
        for child in node.children:
            assert child.level == node.level + 1
            assert child.t_start >= node.t_start - 1e-6
            assert child.t_end <= node.t_end + 1e-6


@settings(max_examples=25, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_path_rankings_are_duplicate_free_and_distance_sorted(functions, band):
    tree = build_ipac_tree(functions, "q", T_LO, T_HI, band)
    by_id = {function.object_id: function for function in functions}
    for t in np.linspace(T_LO + 0.05, T_HI - 0.05, 9):
        ranking = tree.ranking_at(float(t))
        assert len(ranking) == len(set(ranking))
        distances = [by_id[object_id].value(float(t)) for object_id in ranking]
        assert distances == sorted(distances)


@settings(max_examples=20, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_tree_size_is_bounded_by_the_arrangement_complexity(functions, band):
    tree = build_ipac_tree(functions, "q", T_LO, T_HI, band)
    count = len(functions)
    # Loose combinatorial bound: per level at most 2N-1 pieces, at most N levels.
    assert tree.size() <= count * (2 * count - 1) * (2 * count)
    assert tree.depth() <= count
