"""Property-based tests for the location pdfs (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.uncertainty.cone import ConePDF
from repro.uncertainty.gaussian import TruncatedGaussianPDF
from repro.uncertainty.uniform import UniformDiskPDF

radius_values = st.floats(min_value=0.1, max_value=3.0, allow_nan=False, allow_infinity=False)
distance_values = st.floats(min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False)
pdf_families = st.sampled_from(["uniform", "gaussian", "cone"])


def make_pdf(family: str, radius: float):
    if family == "uniform":
        return UniformDiskPDF(radius)
    if family == "gaussian":
        return TruncatedGaussianPDF(radius)
    return ConePDF(radius)


@settings(max_examples=40, deadline=None)
@given(family=pdf_families, radius=radius_values)
def test_total_mass_is_one(family, radius):
    pdf = make_pdf(family, radius)
    assert abs(pdf.total_mass() - 1.0) < 5e-3


@settings(max_examples=40, deadline=None)
@given(family=pdf_families, radius=radius_values)
def test_radial_cdf_is_monotone_and_bounded(family, radius):
    pdf = make_pdf(family, radius)
    radii = np.linspace(0.0, pdf.support_radius * 1.2, 25)
    values = [pdf.radial_cdf(float(r)) for r in radii]
    assert all(0.0 <= value <= 1.0 + 1e-9 for value in values)
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] >= 1.0 - 1e-6


@settings(max_examples=30, deadline=None)
@given(family=pdf_families, radius=radius_values, distance=distance_values)
def test_within_distance_probability_is_monotone_in_radius(family, radius, distance):
    pdf = make_pdf(family, radius)
    within = np.linspace(0.0, distance + pdf.support_radius + 1.0, 15)
    values = [pdf.within_distance_probability(distance, float(w)) for w in within]
    assert all(0.0 <= value <= 1.0 + 1e-9 for value in values)
    assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
    assert values[-1] >= 1.0 - 1e-6


@settings(max_examples=30, deadline=None)
@given(family=pdf_families, radius=radius_values, distance=distance_values)
def test_density_is_non_negative_inside_support(family, radius, distance):
    pdf = make_pdf(family, radius)
    rho = min(distance, pdf.support_radius)
    assert pdf.density(rho) >= 0.0


@settings(max_examples=20, deadline=None)
@given(family=pdf_families, radius=radius_values)
def test_samples_respect_the_support(family, radius):
    pdf = make_pdf(family, radius)
    rng = np.random.default_rng(0)
    samples = pdf.sample(rng, 200)
    radii = np.hypot(samples[:, 0], samples[:, 1])
    assert np.all(radii <= pdf.support_radius + 1e-9)
