"""Property-based tests for band pruning and the query predicates (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.pruning import band_intervals, prune_by_band, time_within_band
from repro.core.queries import QueryContext
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.hyperbola import DistanceFunction
from repro.utils.validation import intervals_are_disjoint

T_LO, T_HI = 0.0, 10.0

coordinate = st.floats(min_value=-25.0, max_value=25.0, allow_nan=False, allow_infinity=False)
velocity = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)
band_widths = st.floats(min_value=0.0, max_value=6.0, allow_nan=False, allow_infinity=False)


@st.composite
def function_sets(draw, min_size=2, max_size=7):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    functions = []
    for index in range(count):
        functions.append(
            DistanceFunction.single_segment(
                f"f{index}",
                draw(coordinate),
                draw(coordinate),
                draw(velocity),
                draw(velocity),
                T_LO,
                T_HI,
            )
        )
    return functions


@settings(max_examples=30, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_band_intervals_are_disjoint_and_inside_the_window(functions, band):
    envelope = lower_envelope(functions, T_LO, T_HI)
    for function in functions:
        intervals = band_intervals(function, envelope, band, T_LO, T_HI)
        assert intervals_are_disjoint(intervals)
        for start, end in intervals:
            assert T_LO - 1e-9 <= start <= end <= T_HI + 1e-9


@settings(max_examples=30, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_time_within_band_is_bounded_by_the_window(functions, band):
    envelope = lower_envelope(functions, T_LO, T_HI)
    for function in functions:
        covered = time_within_band(function, envelope, band, T_LO, T_HI)
        assert -1e-9 <= covered <= (T_HI - T_LO) + 1e-6


@settings(max_examples=30, deadline=None)
@given(functions=function_sets(), band=band_widths)
def test_envelope_owners_always_survive_pruning(functions, band):
    envelope = lower_envelope(functions, T_LO, T_HI)
    survivors, stats = prune_by_band(functions, envelope, band, T_LO, T_HI)
    survivor_ids = {function.object_id for function in survivors}
    assert set(envelope.distinct_owner_ids) <= survivor_ids
    assert stats.surviving_candidates == len(survivors)
    assert 0.0 <= stats.survival_ratio <= 1.0


@settings(max_examples=20, deadline=None)
@given(functions=function_sets(min_size=3, max_size=6), band=band_widths)
def test_query_predicate_consistency(functions, band):
    context = QueryContext.build(functions, "query", T_LO, T_HI, band)
    sometime = set(context.uq31_all_sometime())
    always = set(context.uq32_all_always())
    half = set(context.uq33_all_at_least(0.5))
    assert always <= half <= sometime
    for function in functions:
        object_id = function.object_id
        fraction = context.uq13_fraction(object_id)
        assert -1e-9 <= fraction <= 1.0 + 1e-9
        assert context.uq11_sometime(object_id) == (object_id in sometime)
        if context.uq12_always(object_id):
            assert context.uq11_sometime(object_id)


@settings(max_examples=15, deadline=None)
@given(functions=function_sets(min_size=3, max_size=6))
def test_rank_k_membership_grows_with_k(functions):
    context = QueryContext.build(functions, "query", T_LO, T_HI, 2.0)
    previous: set = set()
    for k in range(1, 4):
        current = set(context.uq41_all_rank_sometime(k))
        assert previous <= current
        previous = current
