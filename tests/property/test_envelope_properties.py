"""Property-based tests for the envelope machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.hyperbola import DistanceFunction
from repro.geometry.envelope.naive import naive_lower_envelope
from repro.utils.validation import envelopes_equal_pointwise

T_LO, T_HI = 0.0, 10.0

coordinate = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False)
velocity = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


@st.composite
def distance_functions(draw, min_size=2, max_size=8):
    """A list of random single-segment distance functions with distinct ids."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    functions = []
    for index in range(count):
        x0 = draw(coordinate)
        y0 = draw(coordinate)
        vx = draw(velocity)
        vy = draw(velocity)
        functions.append(
            DistanceFunction.single_segment(f"f{index}", x0, y0, vx, vy, T_LO, T_HI)
        )
    return functions


@settings(max_examples=40, deadline=None)
@given(functions=distance_functions())
def test_envelope_is_a_lower_bound_of_every_function(functions):
    envelope = lower_envelope(functions, T_LO, T_HI)
    for t in np.linspace(T_LO, T_HI, 41):
        value = envelope.value(float(t))
        for function in functions:
            assert value <= function.value(float(t)) + 1e-7


@settings(max_examples=40, deadline=None)
@given(functions=distance_functions())
def test_envelope_equals_pointwise_minimum(functions):
    envelope = lower_envelope(functions, T_LO, T_HI)
    for t in np.linspace(T_LO, T_HI, 41):
        minimum = min(function.value(float(t)) for function in functions)
        assert abs(envelope.value(float(t)) - minimum) <= 1e-6 * max(1.0, minimum)


@settings(max_examples=25, deadline=None)
@given(functions=distance_functions(min_size=2, max_size=6))
def test_divide_and_conquer_matches_naive(functions):
    fast = lower_envelope(functions, T_LO, T_HI)
    slow = naive_lower_envelope(functions, T_LO, T_HI)
    assert envelopes_equal_pointwise(fast, slow, samples=101)


@settings(max_examples=40, deadline=None)
@given(functions=distance_functions())
def test_envelope_is_contiguous_and_covers_the_window(functions):
    envelope = lower_envelope(functions, T_LO, T_HI)
    assert envelope.is_contiguous
    assert abs(envelope.t_start - T_LO) < 1e-9
    assert abs(envelope.t_end - T_HI) < 1e-9


@settings(max_examples=40, deadline=None)
@given(functions=distance_functions())
def test_envelope_complexity_is_davenport_schinzel_bounded(functions):
    envelope = lower_envelope(functions, T_LO, T_HI)
    assert len(envelope) <= 2 * len(functions) - 1


@settings(max_examples=40, deadline=None)
@given(functions=distance_functions())
def test_envelope_insensitive_to_input_order(functions):
    forward = lower_envelope(functions, T_LO, T_HI)
    backward = lower_envelope(list(reversed(functions)), T_LO, T_HI)
    assert envelopes_equal_pointwise(forward, backward, samples=101)
