"""The documentation site must stay buildable and internally consistent."""

import importlib.util
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")


def _load(module_name, filename):
    spec = importlib.util.spec_from_file_location(
        module_name, os.path.join(DOCS_DIR, filename)
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


class TestGuides:
    def test_the_three_guides_exist(self):
        for name in ("architecture.md", "query-semantics.md", "performance.md"):
            path = os.path.join(DOCS_DIR, name)
            assert os.path.exists(path), f"docs/{name} is missing"
            with open(path) as handle:
                assert len(handle.read()) > 500, f"docs/{name} looks empty"

    def test_intra_repo_links_resolve(self):
        checker = _load("docs_check_links", "check_links.py")
        problems = []
        for path in checker.document_paths():
            problems.extend(
                (path, target, reason)
                for target, reason in checker.broken_links(path)
            )
        assert problems == []

    def test_query_semantics_names_real_entry_points(self):
        """The operator table must reference methods that actually exist."""
        import re

        from repro.core.queries import QueryContext

        with open(os.path.join(DOCS_DIR, "query-semantics.md")) as handle:
            text = handle.read()
        mentioned = set(re.findall(r"`(uq\d\d?_\w+)\(", text))
        assert mentioned, "the operator table disappeared"
        for name in mentioned:
            assert hasattr(QueryContext, name), f"QueryContext.{name} missing"


class TestApiReference:
    def test_fallback_builder_renders_key_modules(self, tmp_path):
        builder = _load("docs_build_api", "build_api.py")
        builder._ensure_importable()
        builder.build_fallback(str(tmp_path))
        index = (tmp_path / "index.html").read_text()
        for module in (
            "repro.engine.engine",
            "repro.parallel.sharded",
            "repro.streaming.monitor",
            "repro.service.service",
            "repro.trajectories.columnar",
        ):
            assert module in index, f"{module} missing from the API index"
            page = tmp_path / f"{module}.html"
            assert page.exists()
        service_page = (tmp_path / "repro.service.service.html").read_text()
        assert "QueryService" in service_page
        assert "bounded" in service_page  # docstrings made it into the HTML
