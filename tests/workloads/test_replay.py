"""Determinism and reporting of the service traffic driver."""

import pytest

from repro.service import QueryRequest
from repro.workloads.replay import (
    ReplayReport,
    replay_sync,
    service_workload,
)


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        first = service_workload(num_vehicles=20, num_queries=4, ticks=6, seed=7)
        second = service_workload(num_vehicles=20, num_queries=4, ticks=6, seed=7)
        assert first.ticks == second.ticks
        assert first.query_ids == second.query_ids

    def test_different_seed_different_schedule(self):
        first = service_workload(num_vehicles=20, num_queries=4, ticks=6, seed=7)
        second = service_workload(num_vehicles=20, num_queries=4, ticks=6, seed=8)
        assert first.ticks != second.ticks

    def test_every_tick_has_requests_over_monitored_ids(self):
        workload = service_workload(num_vehicles=20, num_queries=4, ticks=6)
        monitored = set(workload.query_ids)
        assert len(workload.ticks) == 6
        for tick in workload.ticks:
            assert len(tick) >= 1
            for request in tick:
                assert isinstance(request, QueryRequest)
                assert request.query_id in monitored
                assert request.t_end > request.t_start

    def test_windows_advance_and_repeat(self):
        workload = service_workload(
            num_vehicles=20, num_queries=4, ticks=8, ticks_per_window_step=4
        )
        windows = [tick[0].group_key[:2] for tick in workload.ticks]
        assert windows[0] == windows[3]      # repeated within a step
        assert windows[0] != windows[4]      # advanced across steps
        assert workload.unique_fingerprints < workload.request_count

    def test_validation(self):
        with pytest.raises(ValueError, match="tick"):
            service_workload(ticks=0)
        with pytest.raises(ValueError, match="requests_per_tick"):
            service_workload(requests_per_tick=0.0)


class TestReplay:
    def test_replay_sync_serves_the_whole_schedule(self):
        workload = service_workload(
            num_vehicles=16, num_queries=4, ticks=4, requests_per_tick=3.0
        )
        report = replay_sync(workload=workload)
        assert isinstance(report, ReplayReport)
        assert report.served == workload.request_count
        assert report.rejected == 0
        assert report.wall_seconds > 0
        assert report.requests_per_second > 0
        assert 0.0 <= report.cache_hit_ratio <= 1.0
        assert report.coalescing_factor >= 1.0
        assert len(report.latency_seconds()) == report.served
        assert report.latency_percentile(95) >= report.latency_percentile(5)
        assert report.p99_latency >= report.p95_latency > 0.0
        assert report.p95_latency == report.latency_percentile(95)
        assert report.p99_latency == report.latency_percentile(99)
        counts = report.backend_counts()
        assert sum(counts.values()) == report.served

    def test_replay_respects_service_options(self):
        workload = service_workload(
            num_vehicles=16, num_queries=4, ticks=3, requests_per_tick=2.0
        )
        report = replay_sync(
            service_options={"force_backend": "single"}, workload=workload
        )
        engine_backends = {
            backend
            for backend in report.backend_counts()
            if backend != "cache"
        }
        assert engine_backends == {"single"}
