"""Tests for the paper's random-waypoint workload generator."""

import numpy as np
import pytest

from repro.uncertainty.gaussian import TruncatedGaussianPDF
from repro.uncertainty.uniform import UniformDiskPDF
from repro.workloads.random_waypoint import (
    MAX_SPEED_MILES_PER_MINUTE,
    MIN_SPEED_MILES_PER_MINUTE,
    RandomWaypointConfig,
    generate_mod,
    generate_trajectories,
)


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = RandomWaypointConfig()
        assert config.region_size_miles == 40.0
        assert config.duration_minutes == 60.0
        assert config.min_speed == pytest.approx(15.0 / 60.0)
        assert config.max_speed == pytest.approx(60.0 / 60.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointConfig(num_objects=0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(region_size_miles=-1.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(duration_minutes=0.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(min_speed=1.0, max_speed=0.5)
        with pytest.raises(ValueError):
            RandomWaypointConfig(segments_per_trajectory=0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(uncertainty_radius=0.0)
        with pytest.raises(ValueError):
            RandomWaypointConfig(pdf_family="exotic")

    def test_make_pdf(self):
        assert isinstance(RandomWaypointConfig().make_pdf(), UniformDiskPDF)
        assert isinstance(
            RandomWaypointConfig(pdf_family="gaussian").make_pdf(),
            TruncatedGaussianPDF,
        )


class TestGeneration:
    def test_object_count_and_ids(self):
        trajectories = generate_trajectories(RandomWaypointConfig(num_objects=25, seed=1))
        assert len(trajectories) == 25
        assert [t.object_id for t in trajectories] == list(range(25))

    def test_time_span_matches_duration(self):
        trajectories = generate_trajectories(RandomWaypointConfig(num_objects=5, seed=1))
        for trajectory in trajectories:
            assert trajectory.start_time == 0.0
            assert trajectory.end_time == pytest.approx(60.0)

    def test_positions_stay_inside_region(self):
        config = RandomWaypointConfig(num_objects=50, segments_per_trajectory=4, seed=2)
        trajectories = generate_trajectories(config)
        for trajectory in trajectories:
            for sample in trajectory.samples:
                assert 0.0 <= sample.x <= config.region_size_miles
                assert 0.0 <= sample.y <= config.region_size_miles

    def test_speeds_within_configured_range(self):
        # With reflection at the boundary a leg's chord can only be shorter
        # than the travelled distance, so speeds are bounded above by the max.
        config = RandomWaypointConfig(num_objects=50, seed=3)
        trajectories = generate_trajectories(config)
        for trajectory in trajectories:
            for segment in trajectory.segments():
                assert segment.speed <= MAX_SPEED_MILES_PER_MINUTE + 1e-9

    def test_most_speeds_reach_minimum(self):
        config = RandomWaypointConfig(num_objects=200, seed=3)
        trajectories = generate_trajectories(config)
        speeds = [t.segments()[0].speed for t in trajectories]
        slow = sum(1 for s in speeds if s < MIN_SPEED_MILES_PER_MINUTE - 1e-9)
        # Only reflected trajectories can fall below the minimum chord speed.
        assert slow / len(speeds) < 0.5

    def test_segment_count_matches_config(self):
        config = RandomWaypointConfig(num_objects=10, segments_per_trajectory=4, seed=4)
        trajectories = generate_trajectories(config)
        for trajectory in trajectories:
            assert len(trajectory.segments()) == 4

    def test_synchronized_velocity_changes(self):
        config = RandomWaypointConfig(num_objects=10, segments_per_trajectory=3, seed=4)
        trajectories = generate_trajectories(config)
        expected_times = [0.0, 20.0, 40.0, 60.0]
        for trajectory in trajectories:
            assert trajectory.sample_times() == pytest.approx(expected_times)

    def test_determinism_with_same_seed(self):
        config = RandomWaypointConfig(num_objects=15, seed=42)
        first = generate_trajectories(config)
        second = generate_trajectories(config)
        for a, b in zip(first, second):
            assert a.samples == b.samples

    def test_different_seeds_differ(self):
        first = generate_trajectories(RandomWaypointConfig(num_objects=5, seed=1))
        second = generate_trajectories(RandomWaypointConfig(num_objects=5, seed=2))
        assert any(a.samples != b.samples for a, b in zip(first, second))

    def test_uncertainty_metadata_propagates(self):
        config = RandomWaypointConfig(num_objects=5, uncertainty_radius=1.25, seed=1)
        trajectories = generate_trajectories(config)
        for trajectory in trajectories:
            assert trajectory.radius == pytest.approx(1.25)
            assert trajectory.pdf.support_radius == pytest.approx(1.25)

    def test_explicit_rng_overrides_seed(self):
        config = RandomWaypointConfig(num_objects=5, seed=1)
        custom = generate_trajectories(config, rng=np.random.default_rng(99))
        default = generate_trajectories(config)
        assert any(a.samples != b.samples for a, b in zip(custom, default))

    def test_generate_mod(self):
        mod = generate_mod(RandomWaypointConfig(num_objects=12, seed=6))
        assert len(mod) == 12
        assert mod.common_time_span() == (0.0, 60.0)
