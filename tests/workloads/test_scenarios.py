"""Tests for the example-scenario generators."""

import pytest

from repro.workloads.scenarios import (
    commuter_traffic,
    convoy_with_stragglers,
    delivery_fleet,
    multi_query_fleet,
    ride_hailing_snapshot,
)


class TestDeliveryFleet:
    def test_sizes_and_ids(self):
        mod = delivery_fleet(num_vans=6, num_stops=3)
        assert len(mod) == 6
        assert "van-0" in mod and "van-5" in mod

    def test_vans_start_and_end_at_depot(self):
        mod = delivery_fleet(num_vans=3, num_stops=2, region_size_miles=20.0)
        depot = (10.0, 10.0)
        for van in mod:
            assert van.position_at(van.start_time).as_tuple() == pytest.approx(depot)
            assert van.position_at(van.end_time).as_tuple() == pytest.approx(depot)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            delivery_fleet(num_vans=0)
        with pytest.raises(ValueError):
            delivery_fleet(num_stops=0)


class TestCommuterTraffic:
    def test_sizes(self):
        mod = commuter_traffic(num_commuters=10)
        assert len(mod) == 10

    def test_commute_goes_west_to_east(self):
        mod = commuter_traffic(num_commuters=20, region_size_miles=30.0)
        for commuter in mod:
            start = commuter.position_at(commuter.start_time)
            end = commuter.position_at(commuter.end_time)
            assert start.x < 10.0
            assert end.x > 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            commuter_traffic(num_commuters=0)


class TestConvoy:
    def test_composition(self):
        mod = convoy_with_stragglers(convoy_size=4, straggler_count=3)
        ids = mod.object_ids
        assert sum(1 for i in ids if str(i).startswith("convoy-")) == 4
        assert sum(1 for i in ids if str(i).startswith("straggler-")) == 3

    def test_convoy_members_stay_close(self):
        mod = convoy_with_stragglers(convoy_size=3, straggler_count=0, spacing_miles=0.5)
        lead = mod.get("convoy-0")
        for other_id in ("convoy-1", "convoy-2"):
            other = mod.get(other_id)
            for t in (0.0, 30.0, 60.0):
                assert lead.position_at(t).distance_to(other.position_at(t)) <= 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            convoy_with_stragglers(convoy_size=0)


class TestRideHailing:
    def test_sizes_and_span(self):
        mod = ride_hailing_snapshot(num_drivers=8, horizon_minutes=20.0)
        assert len(mod) == 8
        assert mod.common_time_span() == (0.0, 20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ride_hailing_snapshot(num_drivers=0)


class TestMultiQueryFleet:
    def test_sizes_ids_and_queries(self):
        mod, query_ids = multi_query_fleet(num_vehicles=24, num_queries=4)
        assert len(mod) == 24
        assert len(query_ids) == 4
        assert len(set(query_ids)) == 4
        for query_id in query_ids:
            assert query_id in mod
        assert mod.common_time_span() == (0.0, 90.0)

    def test_deterministic_for_a_seed(self):
        first_mod, first_ids = multi_query_fleet(num_vehicles=12, num_queries=3, seed=5)
        second_mod, second_ids = multi_query_fleet(num_vehicles=12, num_queries=3, seed=5)
        assert first_ids == second_ids
        for object_id in first_mod.object_ids:
            first_traj = first_mod.get(object_id)
            second_traj = second_mod.get(object_id)
            assert first_traj.position_at(45.0).is_close(second_traj.position_at(45.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_query_fleet(num_vehicles=1)
        with pytest.raises(ValueError):
            multi_query_fleet(num_vehicles=10, num_queries=0)
        with pytest.raises(ValueError):
            multi_query_fleet(num_vehicles=10, num_queries=11)
        with pytest.raises(ValueError):
            multi_query_fleet(num_depots=0)
