"""Oracle tests: the bulk kernels equal their scalar counterparts exactly.

The columnar bulk kernels (``corridor_probe_bulk``, ``segment_boxes_bulk``,
``band_intervals_batch``) are only allowed to *batch* work, never to change
a value.  These tests pin them, result for result, against the retained
scalar paths — on fresh stores, on every scenario shape, for both index
backends, and after a stream of trajectory updates has been applied.
"""

import numpy as np
import pytest

from repro.core.pruning import band_intervals, band_intervals_batch
from repro.core.queries import QueryContext
from repro.engine import QueryEngine
from repro.engine.filtering import (
    TrajectoryArrays,
    conservative_corridor_radius,
    corridor_probe_bulk,
    filter_candidates,
)
from repro.index.boxes import segment_boxes
from repro.streaming import ContinuousMonitor
from repro.trajectories.columnar import segment_boxes_bulk
from repro.workloads.scenarios import multi_query_fleet, sharded_fleet, streaming_fleet


def scalar_corridors(mod, query_ids, t_lo, t_hi, widths):
    """The pre-columnar scalar filtering path, one query at a time."""
    arrays = TrajectoryArrays(use_columnar=False)
    return np.array(
        [
            conservative_corridor_radius(mod, query_id, t_lo, t_hi, width, arrays)
            for query_id, width in zip(query_ids, widths)
        ]
    )


def scalar_entries(mod, max_extent=None):
    entries = []
    for trajectory in mod:
        entries.extend(segment_boxes(trajectory, max_extent=max_extent))
    return entries


@pytest.fixture(scope="module")
def fleet():
    return multi_query_fleet(num_vehicles=40, num_queries=6)


class TestCorridorProbeBulk:
    def test_matches_scalar_on_fleet(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        widths = [mod.default_band_width(query_id) for query_id in query_ids]
        bulk = corridor_probe_bulk(mod, query_ids, lo, hi, widths)
        assert np.array_equal(bulk, scalar_corridors(mod, query_ids, lo, hi, widths))

    def test_matches_scalar_on_subwindows(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        span = hi - lo
        for window in [(lo, lo + span / 3), (lo + span / 4, hi), (lo, hi)]:
            widths = [mod.default_band_width(query_id) for query_id in query_ids]
            bulk = corridor_probe_bulk(mod, query_ids, *window, widths)
            assert np.array_equal(
                bulk, scalar_corridors(mod, query_ids, *window, widths)
            )

    def test_infinite_when_no_candidate_covers_window(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        bulk = corridor_probe_bulk(mod, query_ids[:2], hi + 5, hi + 10, [1.0, 1.0])
        assert np.all(np.isinf(bulk))

    def test_matches_scalar_after_streaming_updates(self):
        scenario = streaming_fleet(num_vehicles=16, num_queries=3, num_batches=2)
        mod = scenario.mod
        monitor = ContinuousMonitor(mod)
        for object_id in mod.object_ids:
            monitor.track(
                object_id,
                max_speed=scenario.max_speed,
                minimum_radius=scenario.uncertainty_radius,
            )
        for batch in scenario.batches:
            for object_id, reports in batch.items():
                monitor.ingest(object_id, reports)
            monitor.apply()
            lo, hi = mod.common_time_span()
            widths = [
                mod.default_band_width(query_id) for query_id in scenario.query_ids
            ]
            bulk = corridor_probe_bulk(mod, scenario.query_ids, lo, hi, widths)
            assert np.array_equal(
                bulk, scalar_corridors(mod, scenario.query_ids, lo, hi, widths)
            )

    def test_misaligned_band_widths_rejected(self, fleet):
        mod, query_ids = fleet
        with pytest.raises(ValueError):
            corridor_probe_bulk(mod, query_ids, 0.0, 1.0, [1.0])


class TestSegmentBoxesBulkOnWorkloads:
    @pytest.mark.parametrize("max_extent", [None, 2.0])
    def test_matches_scalar_on_fleet(self, fleet, max_extent):
        mod, _ = fleet
        bulk = segment_boxes_bulk(
            mod.columnar().pack(), max_extent=max_extent
        ).entries()
        scalar = scalar_entries(mod, max_extent=max_extent)
        assert len(bulk) == len(scalar)
        for left, right in zip(bulk, scalar):
            assert left.object_id == right.object_id
            assert left.box == right.box

    def test_matches_scalar_after_streaming_updates(self):
        scenario = streaming_fleet(num_vehicles=10, num_queries=2, num_batches=2)
        mod = scenario.mod
        monitor = ContinuousMonitor(mod)
        for object_id in mod.object_ids:
            monitor.track(
                object_id,
                max_speed=scenario.max_speed,
                minimum_radius=scenario.uncertainty_radius,
            )
        for batch in scenario.batches:
            for object_id, reports in batch.items():
                monitor.ingest(object_id, reports)
            monitor.apply()
            bulk = segment_boxes_bulk(mod.columnar().pack()).entries()
            scalar = scalar_entries(mod)
            assert [entry.box for entry in bulk] == [entry.box for entry in scalar]


class TestBandIntervalsBatch:
    def test_matches_per_function_calls(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        context = QueryContext.from_mod(mod, query_ids[0], lo, hi)
        functions = list(context.functions.values())
        batched = band_intervals_batch(
            functions, context.envelope, context.band_width, lo, hi
        )
        for function, intervals in zip(functions, batched):
            assert intervals == band_intervals(
                function, context.envelope, context.band_width, lo, hi
            )

    def test_zero_width_window(self, fleet):
        mod, query_ids = fleet
        lo, _ = mod.common_time_span()
        context = QueryContext.from_mod(mod, query_ids[0], lo, lo)
        functions = list(context.functions.values())
        batched = band_intervals_batch(
            functions, context.envelope, context.band_width, lo, lo
        )
        for function, intervals in zip(functions, batched):
            assert intervals == band_intervals(
                function, context.envelope, context.band_width, lo, lo
            )

    def test_empty_batch(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        context = QueryContext.from_mod(mod, query_ids[0], lo, hi)
        assert band_intervals_batch([], context.envelope, 1.0, lo, hi) == []

    def test_invalid_inputs_rejected(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        context = QueryContext.from_mod(mod, query_ids[0], lo, hi)
        with pytest.raises(ValueError):
            band_intervals_batch([], context.envelope, -1.0, lo, hi)
        with pytest.raises(ValueError):
            band_intervals_batch([], context.envelope, 1.0, hi, lo)


class TestEngineUsesBulkKernels:
    """The engine's bulk-kernel path must not change a single answer."""

    @pytest.mark.parametrize("index", ["rtree", "grid"])
    def test_filtered_candidates_match_scalar_corridor(self, fleet, index):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod, index=index)
        arrays = TrajectoryArrays(use_columnar=False)
        for query_id in query_ids:
            width = mod.default_band_width(query_id)
            corridor = conservative_corridor_radius(mod, query_id, lo, hi, width, arrays)
            expected, _ = filter_candidates(
                mod, engine.index, query_id, lo, hi, width, corridor=corridor
            )
            assert engine.candidate_ids(query_id, lo, hi) == expected

    def test_batch_answers_match_per_query_prepares(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        batch_engine = QueryEngine(mod)
        single_engine = QueryEngine(mod)
        batch = batch_engine.prepare_batch(query_ids, lo, hi)
        for prepared in batch:
            single = single_engine.prepare(prepared.query_id, lo, hi)
            assert prepared.context.uq31_all_sometime() == (
                single.context.uq31_all_sometime()
            )
            assert prepared.corridor_radius == single.corridor_radius

    def test_sharded_fleet_index_backends_agree(self):
        mod, query_ids = sharded_fleet(num_districts=3, vehicles_per_district=6)
        lo, hi = mod.common_time_span()
        rtree_engine = QueryEngine(mod, index="rtree")
        grid_engine = QueryEngine(mod, index="grid")
        none_engine = QueryEngine(mod, index=None)
        for query_id in query_ids:
            expected = none_engine.answer(query_id, lo, hi)
            assert rtree_engine.answer(query_id, lo, hi) == expected
            assert grid_engine.answer(query_id, lo, hi) == expected
