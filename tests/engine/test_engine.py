"""The batched QueryEngine: equivalence with per-query contexts, caching, batching."""

from __future__ import annotations

import pytest

from repro.core.queries import QueryContext
from repro.engine import QueryEngine
from repro.trajectories.mod import MovingObjectsDatabase
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories


def unfiltered_context(mod: MovingObjectsDatabase, query_id: object) -> QueryContext:
    lo, hi = mod.common_time_span()
    return QueryContext.from_mod(mod, query_id, lo, hi)


def assert_contexts_equivalent(
    engine_context: QueryContext, reference: QueryContext
) -> None:
    """Batched preparation must answer every query exactly like the reference."""
    assert set(engine_context.uq31_all_sometime()) == set(reference.uq31_all_sometime())
    assert set(engine_context.uq32_all_always()) == set(reference.uq32_all_always())
    assert set(engine_context.uq33_all_at_least(0.5)) == set(
        reference.uq33_all_at_least(0.5)
    )
    for object_id in reference.uq31_all_sometime():
        assert engine_context.uq11_sometime(object_id)
        assert engine_context.uq13_fraction(object_id) == pytest.approx(
            reference.uq13_fraction(object_id), abs=1e-9
        )
        engine_intervals = engine_context.nonzero_probability_intervals(object_id)
        reference_intervals = reference.nonzero_probability_intervals(object_id)
        assert len(engine_intervals) == len(reference_intervals)
        for (a_start, a_end), (b_start, b_end) in zip(
            engine_intervals, reference_intervals
        ):
            assert a_start == pytest.approx(b_start, abs=1e-7)
            assert a_end == pytest.approx(b_end, abs=1e-7)


class TestBatchMatchesPerQuery:
    def test_tiny_mod(self, tiny_mod):
        lo, hi = tiny_mod.common_time_span()
        engine = QueryEngine(tiny_mod)
        batch = engine.prepare_batch(["q", "near"], lo, hi)
        for prepared in batch:
            assert_contexts_equivalent(
                prepared.context, unfiltered_context(tiny_mod, prepared.query_id)
            )

    def test_small_mod(self, small_mod):
        lo, hi = small_mod.common_time_span()
        query_ids = small_mod.object_ids[:4]
        engine = QueryEngine(small_mod)
        batch = engine.prepare_batch(query_ids, lo, hi)
        assert [p.query_id for p in batch] == query_ids
        for prepared in batch:
            assert_contexts_equivalent(
                prepared.context, unfiltered_context(small_mod, prepared.query_id)
            )

    def test_grid_backend_matches_rtree(self, small_mod):
        lo, hi = small_mod.common_time_span()
        query_ids = small_mod.object_ids[:3]
        rtree_batch = QueryEngine(small_mod, index="rtree").prepare_batch(
            query_ids, lo, hi
        )
        grid_batch = QueryEngine(small_mod, index="grid").prepare_batch(
            query_ids, lo, hi
        )
        for r_prepared, g_prepared in zip(rtree_batch, grid_batch):
            assert set(r_prepared.context.uq31_all_sometime()) == set(
                g_prepared.context.uq31_all_sometime()
            )

    def test_parallel_batch_matches_serial(self, small_mod):
        lo, hi = small_mod.common_time_span()
        query_ids = small_mod.object_ids[:4]
        serial = QueryEngine(small_mod).prepare_batch(query_ids, lo, hi)
        parallel = QueryEngine(small_mod, max_workers=4).prepare_batch(
            query_ids, lo, hi
        )
        for s_prepared, p_prepared in zip(serial, parallel):
            assert s_prepared.query_id == p_prepared.query_id
            assert s_prepared.candidate_count == p_prepared.candidate_count
            assert set(s_prepared.context.uq31_all_sometime()) == set(
                p_prepared.context.uq31_all_sometime()
            )

    def test_no_index_engine_uses_all_candidates(self, tiny_mod):
        lo, hi = tiny_mod.common_time_span()
        engine = QueryEngine(tiny_mod, index=None)
        prepared = engine.prepare("q", lo, hi)
        assert prepared.candidate_count == len(tiny_mod) - 1
        assert prepared.corridor_radius is None


class TestFilterSafety:
    """The index filter may never drop an object that survives the 4r band."""

    @pytest.mark.parametrize("seed", [3, 21, 99])
    def test_band_survivors_retained_random(self, seed):
        config = RandomWaypointConfig(num_objects=24, uncertainty_radius=0.5, seed=seed)
        mod = MovingObjectsDatabase(generate_trajectories(config))
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        for query_id in mod.object_ids[:5]:
            reference = unfiltered_context(mod, query_id)
            survivors = {f.object_id for f in reference.survivors()}
            candidates = set(engine.candidate_ids(query_id, lo, hi))
            assert survivors <= candidates
            prepared = engine.prepare(query_id, lo, hi)
            assert survivors == {f.object_id for f in prepared.context.survivors()}

    def test_band_survivors_retained_tiny(self, tiny_mod):
        lo, hi = tiny_mod.common_time_span()
        engine = QueryEngine(tiny_mod)
        reference = unfiltered_context(tiny_mod, "q")
        survivors = {f.object_id for f in reference.survivors()}
        assert survivors <= set(engine.candidate_ids("q", lo, hi))


class TestContextCache:
    def test_cache_hit_returns_identical_object(self, small_mod):
        lo, hi = small_mod.common_time_span()
        engine = QueryEngine(small_mod)
        first = engine.prepare(small_mod.object_ids[0], lo, hi)
        second = engine.prepare(small_mod.object_ids[0], lo, hi)
        assert not first.from_cache
        assert second.from_cache
        assert second.context is first.context

    def test_batch_refresh_hits_cache(self, small_mod):
        lo, hi = small_mod.common_time_span()
        query_ids = small_mod.object_ids[:3]
        engine = QueryEngine(small_mod)
        cold = engine.prepare_batch(query_ids, lo, hi)
        warm = engine.prepare_batch(query_ids, lo, hi)
        assert not any(p.from_cache for p in cold)
        assert all(p.from_cache for p in warm)
        for cold_prepared, warm_prepared in zip(cold, warm):
            assert warm_prepared.context is cold_prepared.context
        info = engine.cache_info()
        assert info.hits == len(query_ids)
        assert info.misses == len(query_ids)

    def test_duplicate_ids_in_one_batch_share_context(self, small_mod):
        lo, hi = small_mod.common_time_span()
        query_id = small_mod.object_ids[0]
        engine = QueryEngine(small_mod)
        batch = engine.prepare_batch([query_id, query_id], lo, hi)
        assert batch.prepared[1].context is batch.prepared[0].context
        assert batch.prepared[1].from_cache

    def test_different_windows_do_not_collide(self, small_mod):
        lo, hi = small_mod.common_time_span()
        mid = (lo + hi) / 2.0
        engine = QueryEngine(small_mod)
        query_id = small_mod.object_ids[0]
        full = engine.prepare(query_id, lo, hi)
        half = engine.prepare(query_id, lo, mid)
        assert half.context is not full.context
        assert half.context.t_end == mid

    def test_invalidate_drops_cached_contexts(self, small_mod):
        lo, hi = small_mod.common_time_span()
        engine = QueryEngine(small_mod)
        query_id = small_mod.object_ids[0]
        first = engine.prepare(query_id, lo, hi)
        assert engine.invalidate(query_id) == 1
        rebuilt = engine.prepare(query_id, lo, hi)
        assert not rebuilt.from_cache
        assert rebuilt.context is not first.context


class TestBatchStatistics:
    def test_batch_result_shape(self, small_mod):
        lo, hi = small_mod.common_time_span()
        query_ids = small_mod.object_ids[:3]
        batch = QueryEngine(small_mod).prepare_batch(query_ids, lo, hi)
        assert len(batch) == 3
        assert set(batch.contexts) == set(query_ids)
        assert batch.total_seconds > 0
        assert batch.mean_prepare_seconds > 0
        assert 0.0 <= batch.mean_filter_ratio <= 1.0
        assert 0.0 <= batch.mean_band_pruning_ratio() <= 1.0
        for prepared in batch:
            assert prepared.total_candidates == len(small_mod) - 1
            assert 0 < prepared.candidate_count <= prepared.total_candidates

    def test_rejects_bad_worker_count(self, tiny_mod):
        with pytest.raises(ValueError):
            QueryEngine(tiny_mod, max_workers=0)

    def test_rejects_unknown_index_kind_string(self, tiny_mod):
        with pytest.raises(ValueError, match="unknown index kind"):
            QueryEngine(tiny_mod, index="r-tree")

    def test_unfiltered_prepare_bypasses_cache(self, small_mod):
        lo, hi = small_mod.common_time_span()
        engine = QueryEngine(small_mod)
        query_id = small_mod.object_ids[0]
        filtered = engine.prepare(query_id, lo, hi)
        unfiltered = engine.prepare(query_id, lo, hi, use_index=False)
        assert not unfiltered.from_cache
        assert unfiltered.context is not filtered.context
        assert unfiltered.candidate_count == len(small_mod) - 1
        # ... and the unfiltered build must not poison the cache either.
        assert engine.prepare(query_id, lo, hi).context is filtered.context


class TestWindowValidation:
    def test_rejects_inverted_window(self, tiny_mod):
        lo, hi = tiny_mod.common_time_span()
        engine = QueryEngine(tiny_mod)
        with pytest.raises(ValueError, match="empty query window"):
            engine.prepare("q", hi, lo)
        with pytest.raises(ValueError, match="empty query window"):
            engine.prepare_batch(["q"], hi, lo)

    def test_degenerate_window_prepares_without_filtering(self, tiny_mod):
        lo, _ = tiny_mod.common_time_span()
        engine = QueryEngine(tiny_mod)
        prepared = engine.prepare("q", lo, lo)
        assert prepared.candidate_count == len(tiny_mod) - 1
        assert prepared.corridor_radius is None
        assert prepared.context.t_start == prepared.context.t_end == lo


class TestModMutation:
    def test_added_object_becomes_visible(self, small_mod):
        from ..conftest import straight_trajectory

        lo, hi = small_mod.common_time_span()
        engine = QueryEngine(small_mod)
        query_id = small_mod.object_ids[0]
        before = engine.prepare(query_id, lo, hi)
        # A companion glued to the query trajectory must appear as both a
        # candidate and a band survivor after insertion.
        query = small_mod.get(query_id)
        companion = straight_trajectory(
            "companion",
            (query.position_at(lo).x + 0.1, query.position_at(lo).y),
            (query.position_at(hi).x + 0.1, query.position_at(hi).y),
            t_lo=lo,
            t_hi=hi,
        )
        small_mod.add(companion)
        try:
            after = engine.prepare(query_id, lo, hi)
            assert not after.from_cache  # the stale cached context was dropped
            assert after.total_candidates == before.total_candidates + 1
            assert "companion" in set(engine.candidate_ids(query_id, lo, hi))
            assert "companion" in {
                f.object_id for f in after.context.survivors()
            }
        finally:
            small_mod.remove("companion")

    def test_removed_object_disappears(self, small_mod):
        lo, hi = small_mod.common_time_span()
        engine = QueryEngine(small_mod)
        query_id = small_mod.object_ids[0]
        victim = small_mod.object_ids[-1]
        engine.prepare(query_id, lo, hi)
        removed = small_mod.remove(victim)
        try:
            after = engine.prepare(query_id, lo, hi)
            assert victim not in after.context.functions
            assert after.total_candidates == len(small_mod) - 1
        finally:
            small_mod.add(removed)
