"""The LRU context cache: keys, eviction, counters."""

from __future__ import annotations

import pytest

from repro.engine.cache import ContextCache, context_key


class FakeContext:
    """Stand-in for a QueryContext; the cache never inspects its values."""


class TestContextKey:
    def test_quantizes_float_noise(self):
        assert context_key("q", 0.1 + 0.2, 1.0, 2.0) == context_key("q", 0.3, 1.0, 2.0)

    def test_distinguishes_queries_windows_and_bands(self):
        base = context_key("q", 0.0, 1.0, 2.0)
        assert context_key("r", 0.0, 1.0, 2.0) != base
        assert context_key("q", 0.5, 1.0, 2.0) != base
        assert context_key("q", 0.0, 1.5, 2.0) != base
        assert context_key("q", 0.0, 1.0, 2.5) != base


class TestContextCache:
    def test_miss_then_hit(self):
        cache = ContextCache(max_size=4)
        assert cache.get("q", 0.0, 1.0, 2.0) is None
        context = FakeContext()
        cache.put("q", 0.0, 1.0, 2.0, context)
        assert cache.get("q", 0.0, 1.0, 2.0) is context
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert info.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ContextCache(max_size=2)
        first, second, third = FakeContext(), FakeContext(), FakeContext()
        cache.put("a", 0.0, 1.0, 0.0, first)
        cache.put("b", 0.0, 1.0, 0.0, second)
        assert cache.get("a", 0.0, 1.0, 0.0) is first  # refresh "a"
        cache.put("c", 0.0, 1.0, 0.0, third)  # evicts "b", the LRU entry
        assert cache.get("b", 0.0, 1.0, 0.0) is None
        assert cache.get("a", 0.0, 1.0, 0.0) is first
        assert cache.get("c", 0.0, 1.0, 0.0) is third

    def test_invalidate_by_query_id(self):
        cache = ContextCache(max_size=8)
        cache.put("a", 0.0, 1.0, 0.0, FakeContext())
        cache.put("a", 0.0, 2.0, 0.0, FakeContext())
        cache.put("b", 0.0, 1.0, 0.0, FakeContext())
        assert cache.invalidate("a") == 2
        assert len(cache) == 1
        assert cache.get("b", 0.0, 1.0, 0.0) is not None

    def test_clear_resets_counters(self):
        cache = ContextCache(max_size=2)
        cache.put("a", 0.0, 1.0, 0.0, FakeContext())
        cache.get("a", 0.0, 1.0, 0.0)
        cache.clear()
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ContextCache(max_size=0)
