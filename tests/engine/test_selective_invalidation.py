"""Selective cache invalidation: only contexts a change can affect are dropped."""

import pytest

from repro.core.queries import QueryContext
from repro.engine import QueryEngine
from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory
from repro.workloads.scenarios import multi_query_fleet


@pytest.fixture
def world():
    mod, query_ids = multi_query_fleet(num_vehicles=48, num_queries=5, seed=29)
    return mod, query_ids


def fresh_answers(mod, query_ids, t_lo, t_hi):
    answers = {}
    for query_id in query_ids:
        context = QueryContext.from_mod(mod, query_id, t_lo, t_hi)
        answers[query_id] = {
            str(member): tuple(
                (round(a, 9), round(b, 9))
                for a, b in context.nonzero_probability_intervals(member)
            )
            for member in context.uq31_all_sometime()
        }
    return answers


def engine_answers(batch):
    return {
        prepared.query_id: {
            str(member): tuple(
                (round(a, 9), round(b, 9))
                for a, b in prepared.context.nonzero_probability_intervals(member)
            )
            for member in prepared.context.uq31_all_sometime()
        }
        for prepared in batch
    }


class TestUnrelatedChangesKeepCaches:
    def test_far_away_insert_keeps_every_cached_context(self, world):
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        engine.prepare_batch(query_ids, lo, hi)
        mod.add(
            UncertainTrajectory(
                "far", [(9e3, 9e3, lo), (9.1e3, 9.1e3, hi)], 0.3
            )
        )
        refreshed = engine.prepare_batch(query_ids, lo, hi)
        assert all(prepared.from_cache for prepared in refreshed)

    def test_far_away_removal_keeps_every_cached_context(self, world):
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        mod.add(
            UncertainTrajectory(
                "far", [(9e3, 9e3, lo), (9.1e3, 9.1e3, hi)], 0.3
            )
        )
        engine = QueryEngine(mod)
        engine.prepare_batch(query_ids, lo, hi)
        mod.remove("far")
        refreshed = engine.prepare_batch(query_ids, lo, hi)
        assert all(prepared.from_cache for prepared in refreshed)

    def test_extension_beyond_window_keeps_caches(self, world):
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        engine.prepare_batch(query_ids, lo, hi)
        victim = next(oid for oid in mod.object_ids if oid not in query_ids)
        old = mod.get(victim)
        extended = UncertainTrajectory(
            victim,
            list(old.samples)
            + [TrajectorySample(old.samples[-1].x, old.samples[-1].y, hi + 10.0)],
            old.radius,
        )
        mod.replace_trajectory(extended)
        refreshed = engine.prepare_batch(query_ids, lo, hi)
        assert all(prepared.from_cache for prepared in refreshed)


class TestAffectingChangesInvalidate:
    def test_candidate_edit_inside_window_invalidates_its_queries(self, world):
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        batch = engine.prepare_batch(query_ids, lo, hi)
        target = batch.prepared[0]
        # Move one of the target query's own candidates onto the query path.
        victim = next(iter(target.context.functions))
        query = mod.get(target.query_id)
        mod.replace_trajectory(
            UncertainTrajectory(
                victim,
                [TrajectorySample(s.x, s.y, s.t) for s in query.samples],
                mod.get(victim).radius,
            )
        )
        refreshed = engine.prepare_batch(query_ids, lo, hi)
        assert not refreshed.prepared[0].from_cache

    def test_query_own_change_invalidates_it(self, world):
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        engine.prepare_batch(query_ids, lo, hi)
        query = mod.get(query_ids[0])
        moved = UncertainTrajectory(
            query_ids[0],
            [TrajectorySample(s.x + 1.0, s.y, s.t) for s in query.samples],
            query.radius,
        )
        mod.replace_trajectory(moved)
        refreshed = engine.prepare_batch(query_ids, lo, hi)
        assert not refreshed.prepared[0].from_cache

    def test_removed_query_context_is_dropped(self, world):
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        engine.prepare(query_ids[0], lo, hi)
        mod.remove(query_ids[0])
        engine._refresh_after_mod_change()
        assert engine.cache_info().size == 0


class TestAnswersAlwaysMatchFreshEngine:
    def test_answers_match_after_mixed_mutation_sequence(self, world):
        """The oracle: cached-path answers == from-scratch answers, always."""
        mod, query_ids = world
        lo, hi = mod.common_time_span()
        engine = QueryEngine(mod)
        engine.prepare_batch(query_ids, lo, hi)

        # A far insert, a near replace, a removal, and a pure extension.
        mod.add(
            UncertainTrajectory("far", [(8e3, 8e3, lo), (8e3, 8.2e3, hi)], 0.3)
        )
        query = mod.get(query_ids[1])
        shadow = next(
            oid for oid in mod.object_ids if oid not in query_ids and oid != "far"
        )
        mod.replace_trajectory(
            UncertainTrajectory(
                shadow,
                [TrajectorySample(s.x, s.y, s.t) for s in query.samples],
                mod.get(shadow).radius,
            )
        )
        removable = next(
            oid
            for oid in mod.object_ids
            if oid not in query_ids and oid not in ("far", shadow)
        )
        mod.remove(removable)
        extendable = next(
            oid
            for oid in mod.object_ids
            if oid not in query_ids and oid not in ("far", shadow)
        )
        old = mod.get(extendable)
        mod.replace_trajectory(
            UncertainTrajectory(
                extendable,
                list(old.samples)
                + [TrajectorySample(old.samples[-1].x, old.samples[-1].y, hi + 5.0)],
                old.radius,
            )
        )

        batch = engine.prepare_batch(query_ids, lo, hi)
        assert engine_answers(batch) == fresh_answers(mod, query_ids, lo, hi)
