"""Corridor-radius bounds and candidate filtering safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queries import QueryContext
from repro.engine.filtering import (
    TrajectoryArrays,
    conservative_corridor_radius,
    filter_candidates,
    max_pairwise_distance,
)
from repro.trajectories.mod import MovingObjectsDatabase
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

from ..conftest import straight_trajectory


class TestMaxPairwiseDistance:
    def test_matches_dense_sampling(self, rng):
        config = RandomWaypointConfig(
            num_objects=6, segments_per_trajectory=3, uncertainty_radius=0.5, seed=5
        )
        trajectories = generate_trajectories(config)
        lo = max(t.start_time for t in trajectories)
        hi = min(t.end_time for t in trajectories)
        arrays = TrajectoryArrays()
        for first, second in zip(trajectories, trajectories[1:]):
            exact = max_pairwise_distance(first, second, lo, hi, arrays)
            sampled = max(
                first.position_at(t).distance_to(second.position_at(t))
                for t in np.linspace(lo, hi, 400)
            )
            assert exact >= sampled - 1e-9
            assert exact == pytest.approx(sampled, abs=0.05)

    def test_parallel_lines_constant_distance(self):
        first = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0))
        second = straight_trajectory("b", (0.0, 3.0), (10.0, 3.0))
        assert max_pairwise_distance(first, second, 0.0, 60.0) == pytest.approx(3.0)


class TestConservativeCorridorRadius:
    def test_bounds_every_band_survivor(self):
        config = RandomWaypointConfig(num_objects=20, uncertainty_radius=0.5, seed=31)
        mod = MovingObjectsDatabase(generate_trajectories(config))
        lo, hi = mod.common_time_span()
        query_id = mod.object_ids[0]
        band_width = mod.default_band_width(query_id)
        corridor = conservative_corridor_radius(mod, query_id, lo, hi, band_width)
        context = QueryContext.from_mod(mod, query_id, lo, hi)
        query = mod.get(query_id)
        for function in context.survivors():
            # Every band survivor's expected polyline must dip inside the
            # corridor at some time: its distance function minimum is below
            # the corridor radius by construction of the bound.
            closest = function.minimum_on(lo, hi)[1]
            assert closest <= corridor + 1e-9

    def test_radius_shrinks_with_a_close_companion(self, tiny_mod):
        lo, hi = tiny_mod.common_time_span()
        wide = conservative_corridor_radius(tiny_mod, "q", lo, hi, band_width=2.0)
        # "near" runs parallel 2 miles away, so U == 2 and the radius is 4.
        assert wide == pytest.approx(4.0, abs=1e-9)

    def test_partial_coverage_returns_infinite_radius(self):
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (10.0, 0.0), t_lo=0.0, t_hi=60.0),
                straight_trajectory("late", (5.0, 1.0), (9.0, 1.0), t_lo=30.0, t_hi=60.0),
            ]
        )
        corridor = conservative_corridor_radius(mod, "q", 0.0, 60.0, band_width=2.0)
        assert corridor == float("inf")

    def test_filter_keeps_everything_on_infinite_radius(self):
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (10.0, 0.0), t_lo=0.0, t_hi=60.0),
                straight_trajectory("late", (5.0, 1.0), (9.0, 1.0), t_lo=30.0, t_hi=60.0),
                straight_trajectory("early", (2.0, 1.0), (4.0, 1.0), t_lo=0.0, t_hi=20.0),
            ]
        )
        index = mod.build_index()
        candidates, corridor = filter_candidates(mod, index, "q", 0.0, 60.0, 2.0)
        assert corridor == float("inf")
        assert set(candidates) == {"late", "early"}


class TestTrajectoryArrays:
    def test_columns_are_cached(self, tiny_mod):
        arrays = TrajectoryArrays()
        trajectory = tiny_mod.get("q")
        first = arrays.columns(trajectory)
        second = arrays.columns(trajectory)
        assert first[0] is second[0]

    def test_invalidate_refreshes(self, tiny_mod):
        arrays = TrajectoryArrays()
        trajectory = tiny_mod.get("q")
        first = arrays.columns(trajectory)
        arrays.invalidate("q")
        second = arrays.columns(trajectory)
        assert first[0] is not second[0]

    def test_flat_tracks_mod_revision(self, tiny_mod):
        arrays = TrajectoryArrays()
        ids, starts, lengths, times, xs, ys = arrays.flat(tiny_mod)
        assert len(ids) == len(tiny_mod)
        assert int(lengths.sum()) == len(times) == len(xs) == len(ys)
        assert arrays.flat(tiny_mod)[0] is ids  # cached
        tiny_mod.add(straight_trajectory("extra", (1.0, 1.0), (2.0, 2.0)))
        refreshed_ids = arrays.flat(tiny_mod)[0]
        assert "extra" in refreshed_ids
        tiny_mod.remove("extra")

    def test_positions_interpolate_linearly(self, tiny_mod):
        arrays = TrajectoryArrays()
        trajectory = tiny_mod.get("q")  # (0,0) -> (30,0) over [0, 60]
        xs, ys = arrays.positions(trajectory, np.array([0.0, 30.0, 60.0]))
        assert xs == pytest.approx([0.0, 15.0, 30.0])
        assert ys == pytest.approx([0.0, 0.0, 0.0])
