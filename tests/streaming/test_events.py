"""Delta computation and replay: diff and fold are exact inverses."""

import pytest

from repro.streaming.events import (
    IntervalChanged,
    NeighborAppeared,
    NeighborDropped,
    answers_equal,
    diff_answers,
    replay_deltas,
)


class TestDiffAnswers:
    def test_no_change_emits_nothing(self):
        answer = {"a": ((0.0, 1.0),), "b": ((2.0, 3.0),)}
        assert diff_answers(answer, dict(answer), "q", "veh", 1) == []

    def test_appearance_drop_and_interval_change(self):
        old = {"a": ((0.0, 1.0),), "b": ((2.0, 3.0),)}
        new = {"a": ((0.0, 1.5),), "c": ((4.0, 5.0),)}
        events = diff_answers(old, new, "q", "veh", 7)
        kinds = [type(event) for event in events]
        assert kinds == [NeighborAppeared, NeighborDropped, IntervalChanged]
        appeared, dropped, changed = events
        assert appeared.neighbor_id == "c"
        assert appeared.intervals == ((4.0, 5.0),)
        assert dropped.neighbor_id == "b"
        assert dropped.last_intervals == ((2.0, 3.0),)
        assert changed.neighbor_id == "a"
        assert changed.old_intervals == ((0.0, 1.0),)
        assert changed.new_intervals == ((0.0, 1.5),)
        assert all(event.batch == 7 for event in events)

    def test_representation_noise_does_not_fire_interval_changes(self):
        old = {"a": ((0.0, 1.0),)}
        new = {"a": ((1e-13, 1.0 + 1e-13),)}
        assert diff_answers(old, new, "q", "veh", 1) == []

    def test_events_are_deterministically_ordered(self):
        old = {}
        new = {"z": (), "a": (), "m": ()}
        events = diff_answers(old, new, "q", "veh", 1)
        assert [event.neighbor_id for event in events] == ["a", "m", "z"]


class TestReplayDeltas:
    def test_replay_reconstructs_answers(self):
        streams = [
            ({}, {"a": ((0.0, 1.0),), "b": ((1.0, 2.0),)}),
            (
                {"a": ((0.0, 1.0),), "b": ((1.0, 2.0),)},
                {"a": ((0.5, 1.0),), "c": ((3.0, 4.0),)},
            ),
        ]
        events = []
        for batch, (old, new) in enumerate(streams):
            events.extend(diff_answers(old, new, "q", "veh", batch))
        replayed = replay_deltas(events)
        assert answers_equal(replayed["q"], streams[-1][1])

    def test_replay_handles_multiple_queries(self):
        events = diff_answers({}, {"a": ()}, "q1", "veh1", 1) + diff_answers(
            {}, {"b": ()}, "q2", "veh2", 1
        )
        replayed = replay_deltas(events)
        assert set(replayed) == {"q1", "q2"}

    def test_replay_from_initial_state(self):
        initial = {"q": {"a": ((0.0, 1.0),)}}
        events = diff_answers({"a": ((0.0, 1.0),)}, {}, "q", "veh", 2)
        replayed = replay_deltas(events, initial=initial)
        assert replayed["q"] == {}
        # the initial dict is not mutated
        assert initial["q"] == {"a": ((0.0, 1.0),)}


class TestAnswersEqual:
    def test_differing_members_are_unequal(self):
        assert not answers_equal({"a": ()}, {"b": ()})

    def test_tolerant_to_representation_noise(self):
        assert answers_equal({"a": ((0.0, 1.0),)}, {"a": ((0.0, 1.0 + 1e-13),)})

    def test_real_interval_shift_is_unequal(self):
        assert not answers_equal({"a": ((0.0, 1.0),)}, {"a": ((0.0, 1.1),)})
