"""ContinuousMonitor: correctness oracle, selectivity, and API behavior."""

import pytest

from repro.streaming import (
    ContinuousMonitor,
    NeighborAppeared,
    answers_equal,
    reference_answer,
    replay_deltas,
)
from repro.trajectories.updates import LocationUpdate
from repro.workloads.scenarios import streaming_fleet


@pytest.fixture
def world():
    return streaming_fleet(
        num_vehicles=24, num_queries=3, horizon_minutes=20.0, num_batches=3, seed=47
    )


def build_monitor(scenario, **register_kwargs):
    monitor = ContinuousMonitor(scenario.mod)
    for query_id in scenario.query_ids:
        monitor.register(query_id, **register_kwargs)
    for object_id in scenario.mod.object_ids:
        monitor.track(
            object_id,
            max_speed=scenario.max_speed,
            minimum_radius=scenario.uncertainty_radius,
        )
    return monitor


def assert_matches_oracle(monitor, replayed):
    """Replayed deltas and live answers both match from-scratch recomputation."""
    for standing in monitor.standing_queries:
        window = monitor.resolve_window(standing.key)
        oracle = reference_answer(
            monitor.mod,
            standing.query_id,
            window[0],
            window[1],
            standing.variant,
            standing.fraction,
            standing.band_width,
        )
        assert answers_equal(monitor.answers(standing.key), oracle), standing.key
        assert answers_equal(replayed.get(standing.key, {}), oracle), standing.key


class TestCorrectnessOracle:
    """The ISSUE acceptance bar: deltas reconstruct the from-scratch answers."""

    @pytest.mark.parametrize(
        "register_kwargs",
        [
            {"sliding": 10.0},
            {"window": (5.0, 18.0)},
            {"sliding": 12.0, "variant": "always"},
            {"sliding": 12.0, "variant": "fraction", "fraction": 0.3},
        ],
    )
    def test_replayed_deltas_match_scratch_recomputation(
        self, world, register_kwargs
    ):
        monitor = build_monitor(world, **register_kwargs)
        events = []
        monitor.subscribe(events.append)
        # Registration already emitted initial events before subscription;
        # reconstruct from the live answers instead for batch 0.
        initial = {
            standing.key: monitor.answers(standing.key)
            for standing in monitor.standing_queries
        }
        for batch in world.batches:
            for object_id, reports in batch.items():
                monitor.ingest(object_id, reports)
            monitor.apply()
        replayed = replay_deltas(events, initial=initial)
        assert_matches_oracle(monitor, replayed)

    def test_partial_fleet_batches_also_match(self, world):
        monitor = build_monitor(world, sliding=10.0)
        events = []
        monitor.subscribe(events.append)
        initial = {
            standing.key: monitor.answers(standing.key)
            for standing in monitor.standing_queries
        }
        # Only a third of the fleet reports each batch; silent vehicles keep
        # their old horizon, so the common span (and windows) stay put.
        reporters = world.mod.object_ids[::3]
        for batch in world.batches:
            for object_id in reporters:
                monitor.ingest(object_id, batch[object_id])
            monitor.apply()
        replayed = replay_deltas(events, initial=initial)
        assert_matches_oracle(monitor, replayed)

    def test_registration_events_replay_from_empty(self, world):
        monitor = ContinuousMonitor(world.mod)
        events = []
        monitor.subscribe(events.append)
        standing = monitor.register(world.query_ids[0], sliding=10.0)
        assert events, "registration must emit the initial answer"
        assert all(isinstance(event, NeighborAppeared) for event in events)
        replayed = replay_deltas(events)
        assert answers_equal(replayed[standing.key], monitor.answers(standing.key))


class TestSelectivity:
    def test_pure_extension_of_silent_windows_recomputes_nothing(self, world):
        monitor = build_monitor(world, sliding=10.0)
        evaluations = {
            standing.key: monitor.evaluation_count(standing.key)
            for standing in monitor.standing_queries
        }
        # One vehicle reports beyond every window; the common span cannot
        # advance because the rest of the fleet is silent.
        reporter = world.mod.object_ids[-1]
        monitor.ingest(reporter, world.batches[0][reporter])
        report = monitor.apply()
        assert report.changed_ids == (reporter,)
        assert report.affected_queries == ()
        assert report.events == ()
        for standing in monitor.standing_queries:
            assert monitor.evaluation_count(standing.key) == evaluations[standing.key]

    def test_full_fleet_batch_reports_changed_ids(self, world):
        monitor = build_monitor(world, sliding=10.0)
        for object_id, reports in world.batches[0].items():
            monitor.ingest(object_id, reports)
        report = monitor.apply()
        assert set(report.changed_ids) == set(world.mod.object_ids)
        assert report.batch == 1


class TestSharedCacheKeys:
    def test_two_queries_sharing_a_context_both_see_in_window_changes(self, world):
        """Regression: a context re-created for query A must not be mistaken
        for an unchanged context by query B sharing its cache key."""
        from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory

        monitor = ContinuousMonitor(world.mod)
        events = []
        monitor.subscribe(events.append)
        query_id = world.query_ids[0]
        a = monitor.register(query_id, sliding=10.0, key="A")
        b = monitor.register(query_id, sliding=10.0, variant="always", key="B")
        initial = {k: monitor.answers(k) for k in ("A", "B")}

        # Park another vehicle on the query's own path: an in-window change.
        query = world.mod.get(query_id)
        shadow = next(
            oid for oid in world.mod.object_ids if oid != query_id
        )
        moved = UncertainTrajectory(
            shadow,
            [TrajectorySample(s.x, s.y, s.t) for s in query.samples],
            world.mod.get(shadow).radius,
        )
        report = monitor.apply(trajectories=[moved])
        assert set(report.affected_queries) == {"A", "B"}
        replayed = replay_deltas(events, initial=initial)
        assert_matches_oracle(monitor, replayed)


class TestRegistrationAndSubscriptions:
    def test_register_validates_inputs(self, world):
        monitor = ContinuousMonitor(world.mod)
        with pytest.raises(KeyError):
            monitor.register("ghost")
        with pytest.raises(ValueError, match="unknown variant"):
            monitor.register(world.query_ids[0], variant="sometimes")
        with pytest.raises(ValueError, match="fraction"):
            monitor.register(world.query_ids[0], variant="fraction")
        with pytest.raises(ValueError, match="not both"):
            monitor.register(world.query_ids[0], window=(0.0, 5.0), sliding=5.0)
        monitor.register(world.query_ids[0], key="mine")
        with pytest.raises(KeyError, match="already registered"):
            monitor.register(world.query_ids[1], key="mine")

    def test_unregister_stops_tracking(self, world):
        monitor = ContinuousMonitor(world.mod)
        standing = monitor.register(world.query_ids[0], sliding=10.0)
        monitor.unregister(standing.key)
        assert monitor.standing_queries == []
        with pytest.raises(KeyError):
            monitor.answers(standing.key)

    def test_default_keys_stay_unique_after_unregister(self, world):
        """Regression: auto keys must not collide with surviving queries."""
        monitor = ContinuousMonitor(world.mod)
        first = monitor.register(world.query_ids[0])
        second = monitor.register(world.query_ids[1])
        monitor.unregister(first.key)
        third = monitor.register(world.query_ids[2])
        assert third.key not in (first.key, second.key)

    def test_per_query_subscription_filters_events(self, world):
        monitor = ContinuousMonitor(world.mod)
        only_second = []
        monitor.subscribe(only_second.append, query_key="second")
        monitor.register(world.query_ids[0], key="first")
        monitor.register(world.query_ids[1], key="second")
        assert only_second
        assert all(event.query_key == "second" for event in only_second)

    def test_unsubscribe_stops_delivery(self, world):
        monitor = ContinuousMonitor(world.mod)
        received = []
        unsubscribe = monitor.subscribe(received.append)
        monitor.register(world.query_ids[0], key="a")
        seen = len(received)
        assert seen
        unsubscribe()
        monitor.register(world.query_ids[1], key="b")
        assert len(received) == seen

    def test_empty_mod_is_rejected(self):
        from repro.trajectories.mod import MovingObjectsDatabase

        with pytest.raises(ValueError, match="non-empty"):
            ContinuousMonitor(MovingObjectsDatabase())

    def test_failed_initial_evaluation_rolls_back_registration(self, world):
        """Regression: a failing register() must not poison later apply()s."""
        from repro.trajectories.mod import MovingObjectsDatabase

        lonely = MovingObjectsDatabase([world.mod.get(world.query_ids[0])])
        monitor = ContinuousMonitor(lonely, index=None)
        with pytest.raises(ValueError):
            monitor.register(world.query_ids[0], sliding=10.0)
        assert monitor.standing_queries == []
        monitor.apply()  # must not re-raise the registration failure

    def test_removed_query_trajectory_goes_dormant_and_revives(self, world):
        """Regression: removing a query's object must not crash apply()."""
        monitor = build_monitor(world, sliding=10.0)
        key = monitor.standing_queries[0].key
        query_id = monitor.standing_queries[0].query_id
        assert monitor.answers(key), "needs a non-empty answer to drop"
        removed = world.mod.remove(query_id)
        report = monitor.apply()
        assert key in report.affected_queries
        assert monitor.resolve_window(key) is None
        assert monitor.answers(key) == {}
        world.mod.add(removed)
        monitor.apply()
        assert monitor.answers(key), "the query revives when the object returns"


class TestWindows:
    def test_sliding_window_trails_the_common_horizon(self, world):
        monitor = build_monitor(world, sliding=10.0)
        key = monitor.standing_queries[0].key
        lo, hi = monitor.resolve_window(key)
        assert hi - lo == pytest.approx(10.0)
        for object_id, reports in world.batches[0].items():
            monitor.ingest(object_id, reports)
        monitor.apply()
        new_lo, new_hi = monitor.resolve_window(key)
        assert new_hi > hi
        assert new_hi - new_lo == pytest.approx(10.0)

    def test_superseded_sliding_windows_do_not_accumulate_in_the_cache(self, world):
        monitor = build_monitor(world, sliding=10.0)
        for batch in world.batches:
            for object_id, reports in batch.items():
                monitor.ingest(object_id, reports)
            monitor.apply()
        # One live context per standing query; the advanced-past windows'
        # entries were discarded rather than left to age out of the LRU.
        assert monitor.engine.cache_info().size == len(monitor.standing_queries)

    def test_fixed_window_outside_span_is_inactive(self, world):
        monitor = ContinuousMonitor(world.mod)
        span = world.mod.common_time_span()
        standing = monitor.register(
            world.query_ids[0], window=(span[1] + 100.0, span[1] + 200.0)
        )
        assert monitor.resolve_window(standing.key) is None
        assert monitor.answers(standing.key) == {}
