"""Update feeds: converter equivalence, seeding, and edge-case handling."""

import pytest

from repro.streaming.ingest import DeadReckoningFeed, LocationFeed, StreamIngestor
from repro.trajectories.trajectory import UncertainTrajectory
from repro.trajectories.updates import (
    LocationUpdate,
    VelocityUpdate,
    trajectory_from_dead_reckoning,
    trajectory_from_updates,
)

STREAM = [
    LocationUpdate(0.0, 0.0, 0.0),
    LocationUpdate(1.0, 0.5, 2.0),
    LocationUpdate(2.0, 1.5, 4.0),
    LocationUpdate(2.5, 2.5, 6.0),
]

DR_STREAM = [
    VelocityUpdate(0.0, 0.0, 0.0, 1.0, 0.0),
    VelocityUpdate(2.2, 0.1, 2.0, 1.0, 0.5),
    VelocityUpdate(4.0, 1.0, 4.0, 0.5, 0.5),
]


class TestLocationFeedConverterEquivalence:
    def test_feed_matches_trajectory_from_updates(self):
        feed = LocationFeed("v", max_speed=1.0, minimum_radius=1e-3)
        feed.push_all(STREAM)
        built = feed.trajectory()
        reference = trajectory_from_updates("v", STREAM, 1.0, minimum_radius=1e-3)
        assert built.radius == pytest.approx(reference.radius)
        assert [
            (s.x, s.y, s.t) for s in built.samples
        ] == [(s.x, s.y, s.t) for s in reference.samples]

    def test_incremental_pushes_match_one_shot_pushes(self):
        one_shot = LocationFeed("v", max_speed=1.0)
        one_shot.push_all(STREAM)
        incremental = LocationFeed("v", max_speed=1.0)
        for update in STREAM:
            incremental.push(update)
        assert incremental.radius == pytest.approx(one_shot.radius)
        assert incremental.trajectory().samples == one_shot.trajectory().samples


class TestLocationFeedEdgeCases:
    def test_single_report_cannot_build(self):
        feed = LocationFeed("v", max_speed=1.0)
        feed.push(STREAM[0])
        assert not feed.can_build()
        with pytest.raises(ValueError, match="at least two"):
            feed.trajectory()

    def test_zero_delta_t_report_rejected(self):
        feed = LocationFeed("v", max_speed=1.0)
        feed.push(LocationUpdate(0.0, 0.0, 1.0))
        with pytest.raises(ValueError, match="does not advance"):
            feed.push(LocationUpdate(0.5, 0.0, 1.0))

    def test_unreachable_jump_rejected(self):
        feed = LocationFeed("v", max_speed=0.1)
        feed.push(LocationUpdate(0.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="not reachable"):
            feed.push(LocationUpdate(100.0, 0.0, 1.0))

    def test_tuple_reports_accepted(self):
        feed = LocationFeed("v", max_speed=1.0)
        feed.push((0.0, 0.0, 0.0))
        feed.push((1.0, 0.0, 2.0))
        assert feed.can_build()

    def test_radius_floor_holds_for_dense_reports(self):
        # Reports every 1 time unit under max_speed 0.6: ellipse bounds stay
        # below the 0.3 floor, so the radius never grows.
        feed = LocationFeed("v", max_speed=0.6, minimum_radius=0.3)
        for index in range(6):
            feed.push(LocationUpdate(0.2 * index, 0.0, float(index)))
        assert feed.radius == pytest.approx(0.3)


class TestLocationFeedSeeding:
    def test_seeded_feed_keeps_history_and_radius(self):
        seed = UncertainTrajectory(
            "v", [(0.0, 0.0, 0.0), (1.0, 0.0, 2.0)], 0.4
        )
        feed = LocationFeed("v", max_speed=1.0, seed=seed)
        feed.push(LocationUpdate(1.5, 0.0, 3.0))
        built = feed.trajectory()
        assert built.start_time == 0.0
        assert built.end_time == 3.0
        assert built.radius >= 0.4
        assert [s.t for s in built.samples] == [0.0, 2.0, 3.0]

    def test_seed_id_mismatch_rejected(self):
        seed = UncertainTrajectory("other", [(0.0, 0.0, 0.0), (1.0, 0.0, 2.0)], 0.4)
        with pytest.raises(ValueError, match="belongs to"):
            LocationFeed("v", max_speed=1.0, seed=seed)


class TestDeadReckoningFeed:
    def test_feed_matches_converter(self):
        feed = DeadReckoningFeed("v", d_max=0.5)
        feed.push_all(DR_STREAM)
        built = feed.trajectory(end_time=6.0)
        reference = trajectory_from_dead_reckoning("v", DR_STREAM, 0.5, end_time=6.0)
        assert built.radius == pytest.approx(reference.radius)
        assert built.samples == reference.samples

    def test_single_report_builds(self):
        feed = DeadReckoningFeed("v", d_max=0.5)
        feed.push(DR_STREAM[0])
        assert feed.can_build()
        assert feed.trajectory(end_time=2.0).end_time == 2.0

    def test_seeded_feed_prepends_history(self):
        seed = UncertainTrajectory("v", [(-2.0, 0.0, -4.0), (0.0, 0.0, 0.0)], 0.3)
        feed = DeadReckoningFeed("v", d_max=0.5, seed=seed)
        feed.push_all(DR_STREAM)
        built = feed.trajectory(end_time=6.0)
        assert built.start_time == -4.0
        assert built.radius == pytest.approx(0.5)
        assert built.position_at(-4.0).x == pytest.approx(-2.0)

    def test_report_before_seed_end_rejected(self):
        seed = UncertainTrajectory("v", [(0.0, 0.0, 0.0), (1.0, 0.0, 2.0)], 0.3)
        feed = DeadReckoningFeed("v", d_max=0.5, seed=seed)
        with pytest.raises(ValueError, match="precedes the seed"):
            feed.push(VelocityUpdate(0.0, 0.0, 1.0, 1.0, 0.0))

    def test_non_advancing_report_rejected(self):
        feed = DeadReckoningFeed("v", d_max=0.5)
        feed.push(DR_STREAM[0])
        with pytest.raises(ValueError, match="does not advance"):
            feed.push(VelocityUpdate(1.0, 0.0, 0.0, 1.0, 0.0))


class TestStreamIngestor:
    def test_feeds_are_keyed_and_unique(self):
        ingestor = StreamIngestor()
        ingestor.location_feed("a", max_speed=1.0)
        ingestor.dead_reckoning_feed("b", d_max=0.5)
        assert "a" in ingestor and "b" in ingestor
        with pytest.raises(KeyError, match="already has a feed"):
            ingestor.location_feed("a", max_speed=1.0)
        with pytest.raises(KeyError, match="no feed registered"):
            ingestor.feed("ghost")

    def test_build_dirty_skips_unbuildable_and_clears_dirty(self):
        ingestor = StreamIngestor()
        ingestor.location_feed("a", max_speed=1.0)
        ingestor.location_feed("b", max_speed=1.0)
        ingestor.push("a", STREAM[0])
        ingestor.push("a", STREAM[1])
        ingestor.push("b", STREAM[0])  # single report: not buildable yet
        assert ingestor.dirty_ids() == {"a", "b"}
        built = ingestor.build_dirty()
        assert set(built) == {"a"}
        assert ingestor.dirty_ids() == {"b"}
        assert ingestor.build_dirty() == {}  # "b" still unbuildable

    def test_build_dirty_passes_dead_reckoning_horizon(self):
        ingestor = StreamIngestor()
        ingestor.dead_reckoning_feed("d", d_max=0.5)
        ingestor.push("d", DR_STREAM[0])
        built = ingestor.build_dirty(end_time=9.0)
        assert built["d"].end_time == 9.0
