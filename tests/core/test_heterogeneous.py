"""Tests for the heterogeneous-radii extension (Section 7 future work)."""

import pytest

from repro.core.heterogeneous import HeterogeneousQueryContext
from repro.core.queries import QueryContext
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import make_linear_function, straight_trajectory


@pytest.fixture
def functions():
    """Three candidates at constant distances 1, 3.5 and 8."""
    return [
        make_linear_function("tight", 1.0, 0.0, 0.0, 0.0),
        make_linear_function("loose", 3.5, 0.0, 0.0, 0.0),
        make_linear_function("distant", 8.0, 0.0, 0.0, 0.0),
    ]


class TestConstruction:
    def test_missing_radius_rejected(self, functions):
        with pytest.raises(ValueError):
            HeterogeneousQueryContext.build(
                functions, {"tight": 0.5, "loose": 0.5}, "q", 0.5, 0.0, 10.0
            )

    def test_negative_radius_rejected(self, functions):
        radii = {"tight": 0.5, "loose": -1.0, "distant": 0.5}
        with pytest.raises(ValueError):
            HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)

    def test_empty_or_reversed_window_rejected(self, functions):
        radii = {"tight": 0.5, "loose": 0.5, "distant": 0.5}
        with pytest.raises(ValueError):
            HeterogeneousQueryContext.build([], radii, "q", 0.5, 0.0, 10.0)
        with pytest.raises(ValueError):
            HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 10.0, 0.0)

    def test_from_mod_with_mixed_radii(self):
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (30.0, 0.0), radius=0.5),
                straight_trajectory("wide", (0.0, 3.0), (30.0, 3.0), radius=1.5),
                straight_trajectory("narrow", (0.0, -2.0), (30.0, -2.0), radius=0.25),
            ]
        )
        context = HeterogeneousQueryContext.from_mod(mod, "q", 0.0, 60.0)
        assert context.query_radius == pytest.approx(0.5)
        assert context.radii["wide"] == pytest.approx(1.5)
        assert context.radii["narrow"] == pytest.approx(0.25)


class TestBandWidths:
    def test_equal_radii_reduce_to_4r(self, functions):
        radii = {"tight": 0.5, "loose": 0.5, "distant": 0.5}
        context = HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)
        for object_id in radii:
            assert context.band_width_for(object_id) == pytest.approx(2.0)  # 4r

    def test_wider_objects_get_wider_bands(self, functions):
        radii = {"tight": 0.25, "loose": 2.0, "distant": 0.25}
        context = HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)
        assert context.band_width_for("loose") > context.band_width_for("tight")
        assert context.reach_of("loose") == pytest.approx(2.5)
        assert context.minimum_reach() == pytest.approx(0.75)

    def test_unknown_candidate_raises(self, functions):
        radii = {"tight": 0.5, "loose": 0.5, "distant": 0.5}
        context = HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)
        with pytest.raises(KeyError):
            context.band_width_for("missing")
        with pytest.raises(KeyError):
            context.function_of("q")


class TestQueries:
    def test_large_radius_rescues_a_borderline_candidate(self, functions):
        # With everyone at r = 0.25 the candidate at distance 3.5 is pruned
        # (its closest possible position, 3.0 away, cannot beat the leader's
        # farthest possible distance of 1.5); giving it a large radius so its
        # disk reaches inside the leader's ring brings it back in.
        small = {"tight": 0.25, "loose": 0.25, "distant": 0.25}
        small_ctx = HeterogeneousQueryContext.build(functions, small, "q", 0.25, 0.0, 10.0)
        assert not small_ctx.uq11_sometime("loose")

        mixed = {"tight": 0.25, "loose": 2.25, "distant": 0.25}
        mixed_ctx = HeterogeneousQueryContext.build(functions, mixed, "q", 0.25, 0.0, 10.0)
        assert mixed_ctx.uq11_sometime("loose")
        assert mixed_ctx.uq12_always("loose")

    def test_matches_homogeneous_context_when_radii_equal(self, functions):
        radii = {"tight": 0.5, "loose": 0.5, "distant": 0.5}
        hetero = HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)
        homo = QueryContext.build(functions, "q", 0.0, 10.0, 2.0)
        assert set(hetero.all_sometime()) == set(homo.uq31_all_sometime())
        assert set(hetero.all_always()) == set(homo.uq32_all_always())
        for object_id in radii:
            assert hetero.uq13_fraction(object_id) == pytest.approx(
                homo.uq13_fraction(object_id), abs=1e-6
            )

    def test_category3_variants_and_statistics(self, functions):
        radii = {"tight": 0.5, "loose": 1.5, "distant": 0.5}
        context = HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)
        sometime = set(context.all_sometime())
        always = set(context.all_always())
        half = set(context.all_at_least(0.5))
        assert always <= half <= sometime
        assert "distant" not in sometime
        stats = context.pruning_statistics()
        assert stats.total_candidates == 3
        assert stats.surviving_candidates == len(sometime)
        with pytest.raises(ValueError):
            context.all_at_least(1.5)

    def test_intervals_accessor(self, functions):
        radii = {"tight": 0.5, "loose": 1.5, "distant": 0.5}
        context = HeterogeneousQueryContext.build(functions, radii, "q", 0.5, 0.0, 10.0)
        intervals = context.nonzero_probability_intervals("tight")
        assert intervals and intervals[0][0] == pytest.approx(0.0)
        assert context.nonzero_probability_intervals("distant") == []
