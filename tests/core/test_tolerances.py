"""Guards for the hoisted tolerance module.

``repro.core.tolerances`` is the single source of the numeric tolerances the
scalar oracles and the vectorized kernels must share — a re-duplicated
``TIME_TOLERANCE = 1e-9`` in some module would let the two sides drift and
silently void the bit-identity contract of the differential suite.  These
tests grep the source tree to keep the constants hoisted.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.core import tolerances

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: A numeric (re-)definition of a tolerance constant, e.g.
#: ``TIME_TOLERANCE = 1e-9`` or ``_COEFF_EPSILON = 0.000001``.
_REDEFINITION = re.compile(
    r"^\s*_?(TIME_TOLERANCE|COEFF_EPSILON)\s*=\s*[0-9.]", re.MULTILINE
)


def test_values_are_the_documented_ones():
    assert tolerances.TIME_TOLERANCE == 1e-9
    assert tolerances.COEFF_EPSILON == 1e-12


def test_no_module_redefines_the_tolerances():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "tolerances.py" and path.parent.name == "core":
            continue
        if _REDEFINITION.search(path.read_text()):
            offenders.append(str(path.relative_to(SRC)))
    assert not offenders, (
        "tolerance constants must be imported from repro.core.tolerances, "
        f"not re-defined; offenders: {offenders}"
    )


def test_tolerances_module_stays_a_pure_leaf():
    # Any import would risk a cycle: repro.core.__init__ pulls in geometry
    # and trajectories, both of which import this module.
    source = (SRC / "core" / "tolerances.py").read_text()
    tree = ast.parse(source)
    imports = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.Import, ast.ImportFrom))
    ]
    assert not imports, "repro.core.tolerances must not import anything"


def test_every_tolerance_user_imports_from_the_hoisted_module():
    # Modules mentioning the constants must get them from
    # repro.core.tolerances (directly or via a relative path to it).
    pattern = re.compile(r"\b(TIME_TOLERANCE|COEFF_EPSILON)\b")
    importer = re.compile(r"from\s+[.\w]*\btolerances\s+import")
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "tolerances.py" and path.parent.name == "core":
            continue
        text = path.read_text()
        if pattern.search(text) and not importer.search(text):
            offenders.append(str(path.relative_to(SRC)))
    assert not offenders, (
        "modules using tolerance constants must import them from "
        f"repro.core.tolerances; offenders: {offenders}"
    )
