"""Tests for the shared utilities (timing and validation helpers)."""

import time

import pytest

from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.utils.timing import Stopwatch, time_call
from repro.utils.validation import (
    envelope_matches_pointwise_minimum,
    envelopes_equal_pointwise,
    intervals_are_disjoint,
    total_interval_length,
)

from ..conftest import make_linear_function


class TestStopwatch:
    def test_measure_and_totals(self):
        watch = Stopwatch()
        with watch.measure("step"):
            time.sleep(0.01)
        with watch.measure("step"):
            time.sleep(0.01)
        assert watch.count("step") == 2
        assert watch.total("step") >= 0.02
        assert watch.mean("step") >= 0.01

    def test_unknown_label_defaults(self):
        watch = Stopwatch()
        assert watch.total("nothing") == 0.0
        assert watch.mean("nothing") == 0.0
        assert watch.count("nothing") == 0

    def test_time_call(self):
        elapsed = time_call(lambda: sum(range(1000)), repeats=2)
        assert elapsed >= 0.0
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestValidationHelpers:
    def test_envelope_matches_pointwise_minimum_detects_mismatch(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 5.0, 0.0, 0.0, 0.0)
        good = lower_envelope([near, far], 0.0, 10.0)
        assert envelope_matches_pointwise_minimum(good, [near, far], 0.0, 10.0)
        # An "envelope" made only of the far function is not the minimum.
        from repro.geometry.envelope.pieces import Envelope, EnvelopePiece

        bad = Envelope([EnvelopePiece(far, 0.0, 10.0)])
        assert not envelope_matches_pointwise_minimum(bad, [near, far], 0.0, 10.0)

    def test_envelopes_equal_pointwise(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 5.0, 0.0, 0.0, 0.0)
        first = lower_envelope([near, far], 0.0, 10.0)
        second = lower_envelope([far, near], 0.0, 10.0)
        assert envelopes_equal_pointwise(first, second)

    def test_envelopes_with_disjoint_spans_are_not_equal(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0, 0.0, 5.0)
        far = make_linear_function("far", 1.0, 0.0, 0.0, 0.0, 6.0, 10.0)
        first = lower_envelope([near], 0.0, 5.0)
        second = lower_envelope([far], 6.0, 10.0)
        assert not envelopes_equal_pointwise(first, second)

    def test_interval_helpers(self):
        assert intervals_are_disjoint([(0.0, 1.0), (1.0, 2.0), (3.0, 4.0)])
        assert not intervals_are_disjoint([(0.0, 2.0), (1.0, 3.0)])
        assert total_interval_length([(0.0, 1.0), (3.0, 4.5)]) == pytest.approx(2.5)

    def test_sample_count_validation(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        envelope = lower_envelope([near], 0.0, 10.0)
        with pytest.raises(ValueError):
            envelope_matches_pointwise_minimum(envelope, [near], 0.0, 10.0, samples=1)
