"""Tests for Algorithm 3: constructing the IPAC-NN tree."""

import numpy as np
import pytest

from repro.core.ipacnn import build_ipac_tree, build_ipac_tree_with_statistics
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.klevel import k_level_envelopes

from ..conftest import make_linear_function, random_functions


class TestTreeConstruction:
    def test_empty_candidates_give_empty_tree(self):
        tree = build_ipac_tree([], "q", 0.0, 10.0, band_width=2.0)
        assert tree.size() == 0
        assert tree.depth() == 0

    def test_invalid_window_and_band_rejected(self, crossing_functions):
        with pytest.raises(ValueError):
            build_ipac_tree(crossing_functions, "q", 10.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            build_ipac_tree(crossing_functions, "q", 0.0, 10.0, -1.0)

    def test_level1_nodes_match_lower_envelope(self, crossing_functions):
        tree = build_ipac_tree(crossing_functions, "q", 0.0, 10.0, band_width=2.0)
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        level1 = tree.nodes_at_level(1)
        assert [node.object_id for node in level1] == envelope.owner_ids
        assert level1[0].t_start == pytest.approx(0.0)
        assert level1[-1].t_end == pytest.approx(10.0)

    def test_children_lie_within_parent_interval(self, rng):
        functions = random_functions(10, rng)
        tree = build_ipac_tree(functions, "q", 0.0, 10.0, band_width=3.0)
        for node in tree.walk():
            for child in node.children:
                assert child.t_start >= node.t_start - 1e-6
                assert child.t_end <= node.t_end + 1e-6
                assert child.level == node.level + 1

    def test_path_labels_are_distinct(self, rng):
        functions = random_functions(10, rng)
        tree = build_ipac_tree(functions, "q", 0.0, 10.0, band_width=3.0)
        times = np.linspace(0.05, 9.95, 19)
        for t in times:
            ranking = tree.ranking_at(float(t))
            assert len(ranking) == len(set(ranking))

    def test_ranking_agrees_with_level_envelopes(self, rng):
        functions = random_functions(8, rng)
        # A huge band keeps every candidate, so the tree ranking must equal
        # the k-level-envelope ranking everywhere.
        tree = build_ipac_tree(functions, "q", 0.0, 10.0, band_width=1000.0)
        levels = k_level_envelopes(functions, 0.0, 10.0, max_levels=4)
        for t in np.linspace(0.1, 9.9, 15):
            tree_ranking = tree.ranking_at(float(t))[:3]
            level_ranking = levels.owners_at(float(t))[:3]
            assert tree_ranking == level_ranking

    def test_pruned_objects_never_appear(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        close = make_linear_function("close", 2.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 100.0, 0.0, 0.0, 0.0)
        tree = build_ipac_tree([near, close, far], "q", 0.0, 10.0, band_width=2.0)
        assert "far" not in tree.labelled_object_ids()
        assert set(tree.labelled_object_ids()) == {"near", "close"}

    def test_max_levels_caps_depth(self, rng):
        functions = random_functions(10, rng)
        tree = build_ipac_tree(functions, "q", 0.0, 10.0, band_width=1000.0, max_levels=2)
        assert tree.depth() <= 2

    def test_depth_bounded_by_candidate_count(self, rng):
        functions = random_functions(5, rng)
        tree = build_ipac_tree(functions, "q", 0.0, 10.0, band_width=1000.0)
        assert tree.depth() <= 5

    def test_query_metadata_stored(self, crossing_functions):
        tree = build_ipac_tree(crossing_functions, "the-query", 2.0, 8.0, band_width=2.0)
        assert tree.query_id == "the-query"
        assert tree.t_start == 2.0
        assert tree.t_end == 8.0

    def test_single_candidate_tree(self):
        only = make_linear_function("only", 3.0, 0.0, 0.0, 0.0)
        tree = build_ipac_tree([only], "q", 0.0, 10.0, band_width=2.0)
        assert tree.size() == 1
        assert tree.depth() == 1
        assert tree.ranking_at(5.0) == ["only"]


class TestTreeWithStatistics:
    def test_returns_envelope_and_stats(self, rng):
        functions = random_functions(12, rng)
        tree, envelope, stats = build_ipac_tree_with_statistics(
            functions, "q", 0.0, 10.0, band_width=2.0
        )
        assert stats.total_candidates == 12
        assert 0 < stats.surviving_candidates <= 12
        assert envelope.t_start == pytest.approx(0.0)
        assert tree.size() >= len(envelope)

    def test_empty_input(self):
        tree, envelope, stats = build_ipac_tree_with_statistics([], "q", 0.0, 10.0, 2.0)
        assert tree.size() == 0
        assert stats.total_candidates == 0
