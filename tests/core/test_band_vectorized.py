"""Regression: vectorized band_intervals pins to the scalar brentq implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pruning import band_intervals, band_intervals_scalar
from repro.geometry.envelope.divide_conquer import lower_envelope

from ..conftest import make_linear_function, random_functions

ENDPOINT_TOLERANCE = 1e-7


def assert_same_intervals(vectorized, scalar):
    assert len(vectorized) == len(scalar), (vectorized, scalar)
    for (v_start, v_end), (s_start, s_end) in zip(vectorized, scalar):
        assert v_start == pytest.approx(s_start, abs=ENDPOINT_TOLERANCE)
        assert v_end == pytest.approx(s_end, abs=ENDPOINT_TOLERANCE)


class TestAgainstScalarReference:
    @pytest.mark.parametrize("band_width", [0.0, 0.5, 2.0, 5.0])
    def test_crossing_functions_fixture(self, crossing_functions, band_width):
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        for function in crossing_functions:
            assert_same_intervals(
                band_intervals(function, envelope, band_width, 0.0, 10.0),
                band_intervals_scalar(function, envelope, band_width, 0.0, 10.0),
            )

    def test_fifty_seeded_random_functions(self):
        rng = np.random.default_rng(424242)
        functions = random_functions(50, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        band_width = 1.5
        for function in functions:
            assert_same_intervals(
                band_intervals(function, envelope, band_width, 0.0, 10.0),
                band_intervals_scalar(function, envelope, band_width, 0.0, 10.0),
            )

    @pytest.mark.parametrize("seed", [1, 7, 13])
    def test_random_small_collections(self, seed):
        rng = np.random.default_rng(seed)
        functions = random_functions(8, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        for band_width in (0.0, 0.75, 3.0):
            for function in functions:
                assert_same_intervals(
                    band_intervals(function, envelope, band_width, 0.0, 10.0),
                    band_intervals_scalar(function, envelope, band_width, 0.0, 10.0),
                )

    def test_sub_window_queries(self, crossing_functions):
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        for t_lo, t_hi in ((1.0, 9.0), (2.5, 7.5), (4.0, 4.0)):
            restricted = envelope.restricted(t_lo, t_hi) if t_lo != t_hi else envelope
            for function in crossing_functions:
                assert_same_intervals(
                    band_intervals(function, restricted, 1.0, t_lo, t_hi),
                    band_intervals_scalar(function, restricted, 1.0, t_lo, t_hi),
                )


class TestVectorizedEdgeCases:
    def test_degenerate_window(self, crossing_functions):
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        function = crossing_functions[0]
        assert band_intervals(function, envelope, 10.0, 3.0, 3.0) == [(3.0, 3.0)]
        assert band_intervals(function, envelope, 10.0, 3.0, 3.0) == (
            band_intervals_scalar(function, envelope, 10.0, 3.0, 3.0)
        )

    def test_rejects_negative_band(self, crossing_functions):
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        with pytest.raises(ValueError):
            band_intervals(crossing_functions[0], envelope, -1.0, 0.0, 10.0)

    def test_rejects_inverted_window(self, crossing_functions):
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        with pytest.raises(ValueError):
            band_intervals(crossing_functions[0], envelope, 1.0, 5.0, 4.0)

    def test_envelope_owner_covers_whole_window(self):
        # A single far-away constant function: the whole window is outside a
        # narrow band around a near envelope, and inside a wide one.
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 0.0, 8.0, 0.0, 0.0)
        envelope = lower_envelope([near, far], 0.0, 10.0)
        assert band_intervals(far, envelope, 1.0, 0.0, 10.0) == []
        wide = band_intervals(far, envelope, 10.0, 0.0, 10.0)
        assert wide == [(0.0, 10.0)]
