"""Tests for the IPAC-NN tree value objects (nodes, descriptors, tree views)."""

import pytest

from repro.core.answer import IPACNode, IPACTree, ProbabilityDescriptor


def build_sample_tree() -> IPACTree:
    """A small hand-built tree:

    Level 1: A on [0, 6], B on [6, 10]
    Level 2: under A → C on [0, 3], B on [3, 6]; under B → A on [6, 10]
    Level 3: under (A, [0,3])'s child C → B on [0, 3]
    """
    c_node = IPACNode("C", 0.0, 3.0, level=2)
    c_node.children = [IPACNode("B", 0.0, 3.0, level=3)]
    a_root = IPACNode("A", 0.0, 6.0, level=1)
    a_root.children = [c_node, IPACNode("B", 3.0, 6.0, level=2)]
    b_root = IPACNode("B", 6.0, 10.0, level=1)
    b_root.children = [IPACNode("A", 6.0, 10.0, level=2)]
    return IPACTree("query", 0.0, 10.0, [a_root, b_root])


class TestProbabilityDescriptor:
    def test_valid_descriptor(self):
        descriptor = ProbabilityDescriptor(0.1, 0.6, 0.3, (1.0, 2.0), (0.1, 0.6))
        assert descriptor.samples == [(1.0, 0.1), (2.0, 0.6)]

    def test_mismatched_samples_rejected(self):
        with pytest.raises(ValueError):
            ProbabilityDescriptor(0.1, 0.6, 0.3, (1.0,), (0.1, 0.6))

    def test_inconsistent_extrema_rejected(self):
        with pytest.raises(ValueError):
            ProbabilityDescriptor(0.9, 0.1, 0.5, (), ())


class TestIPACNode:
    def test_interval_and_duration(self):
        node = IPACNode("A", 2.0, 5.0, level=1)
        assert node.interval == (2.0, 5.0)
        assert node.duration == 3.0

    def test_walk_and_subtree_size(self):
        tree = build_sample_tree()
        root = tree.roots[0]
        assert root.subtree_size() == 4  # A + (C + its B child) + B
        assert [node.object_id for node in root.walk()][0] == "A"

    def test_depth(self):
        tree = build_sample_tree()
        assert tree.roots[0].depth() == 3
        assert tree.roots[1].depth() == 2


class TestIPACTree:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            IPACTree("q", 10.0, 0.0, [])

    def test_size_and_depth(self):
        tree = build_sample_tree()
        assert tree.size() == 6
        assert tree.depth() == 3

    def test_nodes_at_level(self):
        tree = build_sample_tree()
        level1 = tree.nodes_at_level(1)
        assert [node.object_id for node in level1] == ["A", "B"]
        level2 = tree.nodes_at_level(2)
        assert [node.object_id for node in level2] == ["C", "B", "A"]
        with pytest.raises(ValueError):
            tree.nodes_at_level(0)

    def test_nodes_for_object(self):
        tree = build_sample_tree()
        b_nodes = tree.nodes_for("B")
        assert len(b_nodes) == 3
        assert all(node.object_id == "B" for node in b_nodes)

    def test_labelled_object_ids(self):
        tree = build_sample_tree()
        assert set(tree.labelled_object_ids()) == {"A", "B", "C"}

    def test_ranking_at(self):
        tree = build_sample_tree()
        assert tree.ranking_at(1.0) == ["A", "C", "B"]
        assert tree.ranking_at(4.0) == ["A", "B"]
        assert tree.ranking_at(8.0) == ["B", "A"]

    def test_ranking_outside_window_raises(self):
        tree = build_sample_tree()
        with pytest.raises(ValueError):
            tree.ranking_at(11.0)

    def test_rank_of(self):
        tree = build_sample_tree()
        assert tree.rank_of("A", 1.0) == 1
        assert tree.rank_of("B", 1.0) == 3
        assert tree.rank_of("C", 8.0) is None

    def test_to_intervals_flat_view(self):
        tree = build_sample_tree()
        intervals = tree.to_intervals()
        assert ("A", 1, 0.0, 6.0) in intervals
        assert len(intervals) == tree.size()

    def test_dag_edges(self):
        tree = build_sample_tree()
        edges = tree.to_dag_edges()
        assert (("A", 0.0, 6.0), ("C", 0.0, 3.0)) in edges
        # Every non-root node appears exactly once as a child.
        child_count = len(edges)
        assert child_count == tree.size() - len(tree.roots)

    def test_level_coverage(self):
        tree = build_sample_tree()
        coverage = tree.level_coverage()
        assert coverage[1] == pytest.approx(10.0)
        assert coverage[2] == pytest.approx(10.0)
        assert coverage[3] == pytest.approx(3.0)
