"""Tests for the Category 1–4 query variants on the QueryContext."""

import pytest

from repro.core.queries import (
    QueryContext,
    naive_uq11_sometime,
    naive_uq13_fraction,
)

from ..conftest import make_linear_function, random_functions

BAND = 2.0


@pytest.fixture
def context():
    """Known scenario over [0, 10] with band width 2:

    * ``leader``   — constant distance 1 (owns the envelope throughout);
    * ``runnerup`` — constant distance 2 (always within the band, rank 2);
    * ``dipping``  — swoops from far away to distance ~2.5 at t=5 and back;
    * ``hopeless`` — constant distance 50 (never relevant).
    """
    functions = [
        make_linear_function("leader", 1.0, 0.0, 0.0, 0.0),
        make_linear_function("runnerup", 2.0, 0.0, 0.0, 0.0),
        make_linear_function("dipping", -10.0, 2.5, 2.0, 0.0),
        make_linear_function("hopeless", 50.0, 0.0, 0.0, 0.0),
    ]
    return QueryContext.build(functions, "query", 0.0, 10.0, BAND)


class TestContextConstruction:
    def test_validation(self):
        functions = [make_linear_function("a", 1.0, 0.0, 0.0, 0.0)]
        with pytest.raises(ValueError):
            QueryContext.build([], "q", 0.0, 10.0, BAND)
        with pytest.raises(ValueError):
            QueryContext.build(functions, "q", 10.0, 0.0, BAND)
        with pytest.raises(ValueError):
            QueryContext.build(functions, "q", 0.0, 10.0, -1.0)

    def test_duplicate_ids_rejected(self):
        functions = [
            make_linear_function("a", 1.0, 0.0, 0.0, 0.0),
            make_linear_function("a", 2.0, 0.0, 0.0, 0.0),
        ]
        with pytest.raises(ValueError):
            QueryContext.build(functions, "q", 0.0, 10.0, BAND)

    def test_unknown_candidate_raises(self, context):
        with pytest.raises(KeyError):
            context.uq11_sometime("unknown")

    def test_query_itself_is_not_a_candidate(self, context):
        with pytest.raises(KeyError):
            context.uq11_sometime("query")


class TestCategory1:
    def test_uq11_sometime(self, context):
        assert context.uq11_sometime("leader")
        assert context.uq11_sometime("runnerup")
        assert context.uq11_sometime("dipping")
        assert not context.uq11_sometime("hopeless")

    def test_uq12_always(self, context):
        assert context.uq12_always("leader")
        assert context.uq12_always("runnerup")
        assert not context.uq12_always("dipping")
        assert not context.uq12_always("hopeless")

    def test_uq12_implies_uq11(self, rng):
        functions = random_functions(12, rng)
        context = QueryContext.build(functions, "q", 0.0, 10.0, BAND)
        for function in functions:
            if context.uq12_always(function.object_id):
                assert context.uq11_sometime(function.object_id)

    def test_uq13_fraction_bounds_and_values(self, context):
        assert context.uq13_fraction("leader") == pytest.approx(1.0, abs=1e-6)
        assert context.uq13_fraction("hopeless") == 0.0
        fraction = context.uq13_fraction("dipping")
        assert 0.0 < fraction < 1.0

    def test_uq13_at_least(self, context):
        assert context.uq13_at_least("leader", 0.99)
        assert not context.uq13_at_least("hopeless", 0.01)
        assert context.uq13_at_least("dipping", 0.05)
        with pytest.raises(ValueError):
            context.uq13_at_least("leader", 1.5)

    def test_nonzero_probability_intervals(self, context):
        intervals = context.nonzero_probability_intervals("dipping")
        assert intervals
        assert all(0.0 <= start <= end <= 10.0 for start, end in intervals)
        assert context.nonzero_probability_intervals("hopeless") == []


class TestCategory2:
    def test_rank1_is_the_envelope_owner(self, context):
        assert context.uq21_rank_sometime("leader", 1)
        assert context.uq22_rank_always("leader", 1)
        assert not context.uq21_rank_sometime("runnerup", 1)

    def test_rank2_includes_runnerup(self, context):
        assert context.uq21_rank_sometime("runnerup", 2)
        assert context.uq22_rank_always("runnerup", 2)

    def test_rank_k_monotone_in_k(self, context):
        for object_id in ("leader", "runnerup", "dipping"):
            for k in (1, 2, 3):
                if context.uq21_rank_sometime(object_id, k):
                    assert context.uq21_rank_sometime(object_id, k + 1)

    def test_rank_fraction_bounds(self, context):
        assert context.uq23_rank_fraction("leader", 1) == pytest.approx(1.0, abs=1e-6)
        fraction = context.uq23_rank_fraction("dipping", 3)
        assert 0.0 <= fraction <= 1.0

    def test_uq23_at_least(self, context):
        assert context.uq23_rank_at_least("runnerup", 2, 0.9)
        with pytest.raises(ValueError):
            context.uq23_rank_at_least("runnerup", 2, -0.5)

    def test_rank_validation(self, context):
        with pytest.raises(ValueError):
            context.uq21_rank_sometime("leader", 0)
        with pytest.raises(KeyError):
            context.uq21_rank_sometime("query", 1)


class TestCategory3:
    def test_uq31_equals_band_survivors(self, context):
        assert set(context.uq31_all_sometime()) == {"leader", "runnerup", "dipping"}

    def test_uq32_subset_of_uq31(self, context):
        always = set(context.uq32_all_always())
        sometime = set(context.uq31_all_sometime())
        assert always <= sometime
        assert always == {"leader", "runnerup"}

    def test_uq33_interpolates_between_them(self, context):
        strict = set(context.uq33_all_at_least(0.999))
        loose = set(context.uq33_all_at_least(0.0))
        assert strict == set(context.uq32_all_always())
        assert loose == set(context.uq31_all_sometime())
        middle = set(context.uq33_all_at_least(0.3))
        assert strict <= middle <= loose

    def test_uq33_validation(self, context):
        with pytest.raises(ValueError):
            context.uq33_all_at_least(2.0)


class TestCategory4:
    def test_uq41_rank1_is_envelope_owner_set(self, context):
        assert set(context.uq41_all_rank_sometime(1)) == {"leader"}

    def test_uq41_rank2(self, context):
        assert set(context.uq41_all_rank_sometime(2)) == {"leader", "runnerup"}

    def test_uq42_always(self, context):
        assert set(context.uq42_all_rank_always(2)) == {"leader", "runnerup"}

    def test_uq43_at_least(self, context):
        assert set(context.uq43_all_rank_at_least(2, 0.5)) == {"leader", "runnerup"}

    def test_rank_validation(self, context):
        with pytest.raises(ValueError):
            context.uq41_all_rank_sometime(0)


class TestFixedTimeVariants:
    def test_candidates_at(self, context):
        at_five = context.candidates_at(5.0)
        assert "leader" in at_five and "runnerup" in at_five
        assert "hopeless" not in at_five
        assert "dipping" in at_five  # its dip reaches within the band at t=5

    def test_candidates_at_start(self, context):
        at_zero = context.candidates_at(0.0)
        assert "dipping" not in at_zero

    def test_ranking_at(self, context):
        assert context.ranking_at(5.0, 2) == ["leader", "runnerup"]

    def test_time_outside_window_rejected(self, context):
        with pytest.raises(ValueError):
            context.candidates_at(11.0)
        with pytest.raises(ValueError):
            context.ranking_at(-1.0, 2)


class TestContextArtefacts:
    def test_pruning_statistics(self, context):
        stats = context.pruning_statistics()
        assert stats.total_candidates == 4
        assert stats.surviving_candidates == 3

    def test_ipac_tree_cached_and_consistent(self, context):
        tree = context.ipac_tree()
        assert tree is context.ipac_tree()
        assert tree.ranking_at(5.0)[0] == "leader"
        bounded = context.ipac_tree(max_levels=1)
        assert bounded.depth() <= 1

    def test_level_envelopes_deepening(self, context):
        shallow = context.level_envelopes(1)
        deep = context.level_envelopes(3)
        assert len(deep) >= len(shallow)


class TestNaiveBaselines:
    def test_naive_matches_envelope_based_uq11(self, rng):
        functions = random_functions(10, rng)
        context = QueryContext.build(functions, "q", 0.0, 10.0, BAND)
        for function in functions:
            assert naive_uq11_sometime(
                functions, function.object_id, 0.0, 10.0, BAND
            ) == context.uq11_sometime(function.object_id)

    def test_naive_matches_envelope_based_uq13(self, rng):
        functions = random_functions(8, rng)
        context = QueryContext.build(functions, "q", 0.0, 10.0, BAND)
        for function in functions[:4]:
            naive = naive_uq13_fraction(functions, function.object_id, 0.0, 10.0, BAND)
            fast = context.uq13_fraction(function.object_id)
            assert naive == pytest.approx(fast, abs=1e-3)

    def test_naive_unknown_target_raises(self, crossing_functions):
        with pytest.raises(KeyError):
            naive_uq11_sometime(crossing_functions, "missing", 0.0, 10.0, BAND)
