"""Tests for the SQL-style query language front-end."""

import pytest

from repro.query_language import (
    ContinuousNNQueryAST,
    NNPredicate,
    Quantifier,
    QueryLanguageError,
    TimeWindow,
    execute_query,
    parse_query,
    tokenize,
)
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory


class TestTokenizer:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select t from mod where exists time in [0, 1]")
        kinds = [token.kind for token in tokens]
        assert kinds[:5] == ["SELECT", "T", "FROM", "MOD", "WHERE"]

    def test_numbers_and_strings(self):
        tokens = tokenize("[0.5, 12] 'query-7' obj_3")
        kinds = [token.kind for token in tokens]
        assert kinds == ["LBRACKET", "NUMBER", "COMMA", "NUMBER", "RBRACKET", "STRING", "IDENT"]
        assert tokens[5].text == "query-7"

    def test_two_character_operators(self):
        tokens = tokenize(">= <= > <")
        assert [token.kind for token in tokens] == ["GE", "LE", "GT", "LT"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(QueryLanguageError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_rejected(self):
        with pytest.raises(QueryLanguageError):
            tokenize("SELECT @ FROM MOD")


class TestParser:
    def test_category3_existential(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0"
        )
        assert ast.quantifier is Quantifier.EXISTS
        assert ast.window == TimeWindow(0.0, 60.0)
        assert ast.predicate == NNPredicate("q")
        assert ast.target_object is None
        assert ast.category == 3

    def test_category1_with_target(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE FORALL TIME IN [10, 20] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'a'"
        )
        assert ast.quantifier is Quantifier.FORALL
        assert ast.target_object == "a"
        assert ast.category == 1

    def test_category4_rank_fraction(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE FRACTION TIME IN [0, 60] >= 0.5 "
            "AND RANK_NN(T, 'q', TIME) <= 2"
        )
        assert ast.quantifier is Quantifier.FRACTION
        assert ast.min_fraction == pytest.approx(0.5)
        assert ast.predicate.max_rank == 2
        assert ast.category == 4

    def test_category2(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= 3 AND T = 'b'"
        )
        assert ast.category == 2

    def test_numeric_object_ids_are_coerced(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 7, TIME) > 0"
        )
        assert ast.predicate.query_object == 7

    def test_malformed_queries_rejected(self):
        bad_queries = [
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROBABILITY_NN(T, 'q', TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [60, 0] AND PROBABILITY_NN(T, 'q', TIME) > 0",
            "SELECT T FROM MOD WHERE SOMETIMES TIME IN [0, 60] AND PROBABILITY_NN(T, 'q', TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROBABILITY_NN(T, 'q', TIME) > 0.5",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] AND RANK_NN(T, 'q', TIME) <= 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] AND RANK_NN(T, 'q', TIME) <= 2 trailing",
            "SELECT T FROM MOD WHERE FRACTION TIME IN [0, 60] AND PROBABILITY_NN(T, 'q', TIME) > 0",
        ]
        for text in bad_queries:
            with pytest.raises(QueryLanguageError):
                parse_query(text)

    def test_fraction_bound_validation(self):
        with pytest.raises((QueryLanguageError, ValueError)):
            parse_query(
                "SELECT T FROM MOD WHERE FRACTION TIME IN [0, 60] >= 1.5 "
                "AND PROBABILITY_NN(T, 'q', TIME) > 0"
            )


class TestExecutor:
    @pytest.fixture
    def mod(self) -> MovingObjectsDatabase:
        return MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
                straight_trajectory("near", (0.0, 2.0), (30.0, 2.0)),
                straight_trajectory("crossing", (15.0, -20.0), (15.0, 20.0)),
                straight_trajectory("far", (0.0, 30.0), (30.0, 30.0)),
            ]
        )

    def test_category3_exists(self, mod):
        result = execute_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0",
            mod,
        )
        assert set(result.object_ids) == {"near", "crossing"}

    def test_category3_forall(self, mod):
        result = execute_query(
            "SELECT T FROM MOD WHERE FORALL TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0",
            mod,
        )
        assert result.object_ids == ["near"]

    def test_category1_target(self, mod):
        holds = execute_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'crossing'",
            mod,
        )
        fails = execute_query(
            "SELECT T FROM MOD WHERE FORALL TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'crossing'",
            mod,
        )
        assert holds.holds
        assert not fails.holds

    def test_category4_rank(self, mod):
        result = execute_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= 2",
            mod,
        )
        assert "near" in result.object_ids and "crossing" in result.object_ids

    def test_fraction_quantifier(self, mod):
        result = execute_query(
            "SELECT T FROM MOD WHERE FRACTION TIME IN [0, 60] >= 0.9 "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0",
            mod,
        )
        assert result.object_ids == ["near"]

    def test_numeric_id_resolution(self):
        from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

        mod = MovingObjectsDatabase(
            generate_trajectories(RandomWaypointConfig(num_objects=8, seed=3))
        )
        result = execute_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 0, TIME) > 0",
            mod,
        )
        assert result.object_ids  # somebody can always be the NN

    def test_unknown_query_object_raises(self, mod):
        with pytest.raises(KeyError):
            execute_query(
                "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
                "AND PROBABILITY_NN(T, 'ghost', TIME) > 0",
                mod,
            )

    def test_executing_a_pre_parsed_ast(self, mod):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0"
        )
        assert isinstance(ast, ContinuousNNQueryAST)
        result = execute_query(ast, mod)
        assert set(result.object_ids) == {"near", "crossing"}
