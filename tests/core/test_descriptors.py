"""Tests for probability descriptors attached to IPAC-NN nodes."""

import pytest

from repro.core.answer import IPACNode
from repro.core.continuous import ContinuousProbabilisticNNQuery
from repro.core.descriptors import annotate_tree, compute_descriptor
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory


@pytest.fixture
def mod() -> MovingObjectsDatabase:
    return MovingObjectsDatabase(
        [
            straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
            straight_trajectory("near", (0.0, 1.5), (30.0, 1.5)),
            straight_trajectory("mid", (0.0, -2.5), (30.0, -2.5)),
        ]
    )


class TestComputeDescriptor:
    def test_descriptor_values_are_probabilities(self, mod):
        node = IPACNode("near", 10.0, 40.0, level=1)
        descriptor = compute_descriptor(node, mod, "q", samples=3, grid_size=96)
        assert 0.0 <= descriptor.minimum <= descriptor.mean <= descriptor.maximum <= 1.0
        assert len(descriptor.sample_times) == 3

    def test_sample_times_lie_inside_interval(self, mod):
        node = IPACNode("near", 10.0, 40.0, level=1)
        descriptor = compute_descriptor(node, mod, "q", samples=4, grid_size=96)
        assert all(10.0 < t < 40.0 for t in descriptor.sample_times)

    def test_nearest_object_has_high_probability(self, mod):
        node = IPACNode("near", 10.0, 40.0, level=1)
        descriptor = compute_descriptor(node, mod, "q", samples=2, grid_size=96)
        assert descriptor.mean > 0.5

    def test_sample_count_validation(self, mod):
        node = IPACNode("near", 10.0, 40.0, level=1)
        with pytest.raises(ValueError):
            compute_descriptor(node, mod, "q", samples=0)

    def test_zero_duration_node(self, mod):
        node = IPACNode("near", 20.0, 20.0, level=1)
        descriptor = compute_descriptor(node, mod, "q", samples=3, grid_size=96)
        assert len(descriptor.sample_times) == 1


class TestAnnotateTree:
    def test_annotation_bounded_by_max_nodes(self, mod):
        query = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)
        tree = query.answer_tree()
        annotated = annotate_tree(tree, mod, samples=2, grid_size=64, max_nodes=1)
        assert annotated == 1
        nodes = list(tree.walk())
        assert nodes[0].descriptor is not None

    def test_full_annotation(self, mod):
        query = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)
        tree = query.answer_tree(max_levels=2)
        annotated = annotate_tree(tree, mod, samples=2, grid_size=64)
        assert annotated == tree.size()
        assert all(node.descriptor is not None for node in tree.walk())
