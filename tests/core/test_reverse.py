"""Tests for reverse and all-pairs continuous probabilistic NN queries."""

import pytest

from repro.core.reverse import all_pairs_nn_matrix, mutual_nn_pairs, reverse_nn_query
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory


@pytest.fixture
def mod() -> MovingObjectsDatabase:
    """Three vehicles on parallel tracks plus a far-away pair.

    ``center`` runs between ``north`` and ``south`` (2 miles away from each);
    ``remote`` and ``remote-buddy`` drive 40 miles away and only one mile
    apart, so each other's nearest neighbor is unambiguous and the near
    cluster is irrelevant to them.
    """
    return MovingObjectsDatabase(
        [
            straight_trajectory("center", (0.0, 0.0), (30.0, 0.0)),
            straight_trajectory("north", (0.0, 2.0), (30.0, 2.0)),
            straight_trajectory("south", (0.0, -2.0), (30.0, -2.0)),
            straight_trajectory("remote", (0.0, 40.0), (30.0, 40.0)),
            straight_trajectory("remote-buddy", (0.0, 39.0), (30.0, 39.0)),
        ]
    )


class TestReverseNNQuery:
    def test_center_is_reverse_neighbor_of_its_flankers(self, mod):
        results = reverse_nn_query(mod, "center", 0.0, 60.0)
        ids = [result.object_id for result in results]
        assert "north" in ids and "south" in ids
        assert "remote" not in ids

    def test_remote_object_is_reverse_neighbor_only_of_its_buddy(self, mod):
        results = reverse_nn_query(mod, "remote", 0.0, 60.0)
        # Only the buddy (one mile away) can have 'remote' as its NN; the near
        # cluster is ~38 miles away with closer alternatives of its own.
        assert [result.object_id for result in results] == ["remote-buddy"]

    def test_reverse_results_report_always_and_fraction(self, mod):
        results = reverse_nn_query(mod, "center", 0.0, 60.0)
        by_id = {result.object_id: result for result in results}
        assert by_id["north"].always
        assert by_id["north"].fraction == pytest.approx(1.0, abs=1e-6)

    def test_results_sorted_by_fraction(self, mod):
        results = reverse_nn_query(mod, "center", 0.0, 60.0)
        fractions = [result.fraction for result in results]
        assert fractions == sorted(fractions, reverse=True)

    def test_candidate_restriction(self, mod):
        results = reverse_nn_query(mod, "center", 0.0, 60.0, candidate_ids=["north"])
        assert [result.object_id for result in results] == ["north"]

    def test_unknown_query_raises(self, mod):
        with pytest.raises(KeyError):
            reverse_nn_query(mod, "missing", 0.0, 60.0)

    def test_reverse_vs_forward_asymmetry(self):
        """An object crowded by others may be 'everyone's neighbor' only one way.

        ``loner`` is nearest to the pair but the pair members are each other's
        nearest neighbors — so the loner has the pair in its forward answer,
        while its reverse answer may still contain them only through the band.
        """
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("pair-a", (0.0, 0.0), (30.0, 0.0)),
                straight_trajectory("pair-b", (0.0, 0.6), (30.0, 0.6)),
                straight_trajectory("loner", (0.0, 6.0), (30.0, 6.0)),
            ]
        )
        reverse_of_loner = reverse_nn_query(mod, "loner", 0.0, 60.0)
        # Neither pair member can have the loner as NN: the partner is closer
        # by more than the band.
        assert reverse_of_loner == []


class TestAllPairs:
    def test_matrix_shape_and_contents(self, mod):
        matrix = all_pairs_nn_matrix(mod, 0.0, 60.0)
        assert set(matrix) == {"center", "north", "south", "remote", "remote-buddy"}
        assert set(matrix["center"]) == {"north", "south"}
        assert "center" in matrix["north"]
        assert matrix["remote"] == ["remote-buddy"]
        assert matrix["remote-buddy"] == ["remote"]

    def test_mutual_pairs(self, mod):
        pairs = mutual_nn_pairs(mod, 0.0, 60.0)
        normalized = {tuple(sorted((str(a), str(b)))) for a, b in pairs}
        assert ("center", "north") in normalized
        assert ("center", "south") in normalized
        assert ("remote", "remote-buddy") in normalized
        # The far pair never mixes with the near cluster.
        assert not any(
            ("remote" in pair or "remote-buddy" in pair)
            and ("center" in pair or "north" in pair or "south" in pair)
            for pair in normalized
        )

    def test_mutual_pairs_are_unique(self, mod):
        pairs = mutual_nn_pairs(mod, 0.0, 60.0)
        normalized = [tuple(sorted((str(a), str(b)))) for a, b in pairs]
        assert len(normalized) == len(set(normalized))
