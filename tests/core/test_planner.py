"""Tests for the query-language planner: fusion, costing, execution, explain."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.query_language import (
    CostModel,
    QueryExecutor,
    compile_queries,
    execute_many,
    execute_query,
    executor_for,
    explain_plan,
    parse_query,
)
from repro.query_language.cost import StoreStats
from repro.trajectories.mod import MovingObjectsDatabase
from repro.workloads.scenarios import multi_query_fleet

from ..conftest import straight_trajectory


@pytest.fixture
def mod() -> MovingObjectsDatabase:
    return MovingObjectsDatabase(
        [
            straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
            straight_trajectory("near", (0.0, 2.0), (30.0, 2.0)),
            straight_trajectory("crossing", (15.0, -20.0), (15.0, 20.0)),
            straight_trajectory("far", (0.0, 30.0), (30.0, 30.0)),
        ]
    )


def _text(query: str, t_start: float = 0.0, t_end: float = 60.0) -> str:
    return (
        f"SELECT T FROM MOD WHERE EXISTS TIME IN [{t_start}, {t_end}] "
        f"AND PROBABILITY_NN(T, '{query}', TIME) > 0"
    )


class TestFusion:
    def test_shared_window_statements_fuse_into_one_group(self, mod):
        asts = [parse_query(_text("q")), parse_query(_text("near"))]
        plan = compile_queries(asts, mod)
        assert len(plan.groups) == 1
        assert plan.groups[0].width == 2
        assert plan.statement_count == 2

    def test_distinct_windows_stay_separate(self, mod):
        asts = [
            parse_query(_text("q")),
            parse_query(_text("q", t_end=30.0)),
        ]
        plan = compile_queries(asts, mod)
        assert len(plan.groups) == 2
        assert [group.width for group in plan.groups] == [1, 1]

    def test_band_width_override_splits_groups(self, mod):
        asts = [parse_query(_text("q")) for _ in range(3)]
        plan = compile_queries(asts, mod, band_width=[1.0, 1.0, None])
        widths = sorted(group.width for group in plan.groups)
        assert widths == [1, 2]
        by_band = {group.band_width: group.width for group in plan.groups}
        assert by_band == {1.0: 2, None: 1}

    def test_scalar_band_width_fuses_everything(self, mod):
        asts = [parse_query(_text("q")), parse_query(_text("near"))]
        plan = compile_queries(asts, mod, band_width=2.0)
        assert len(plan.groups) == 1
        assert plan.groups[0].band_width == 2.0

    def test_band_width_sequence_must_match_statement_count(self, mod):
        asts = [parse_query(_text("q"))]
        with pytest.raises(ValueError):
            compile_queries(asts, mod, band_width=[1.0, 2.0])


class TestCostModel:
    def test_tiny_store_scans(self, mod):
        plan = compile_queries([parse_query(_text("q"))], mod)
        assert not plan.access.use_index
        assert plan.access.index_kind is None
        assert "index_min" in plan.access.reason

    def test_large_store_uses_index(self):
        fleet, _ = multi_query_fleet(num_vehicles=60, num_queries=2)
        plan = compile_queries(
            [parse_query(_text("veh-0", t_end=30.0))], fleet
        )
        assert plan.access.use_index
        assert plan.access.index_kind == "rtree"

    def test_thresholds_flip_the_access_choice(self, mod):
        eager = CostModel(index_min_objects=1, index_min_segments=1)
        plan = compile_queries(
            [parse_query(_text("q"))], mod, cost_model=eager
        )
        assert plan.access.use_index

    def test_backend_single_without_sharded_engine(self, mod):
        plan = compile_queries([parse_query(_text("q"))], mod)
        assert plan.groups[0].backend.backend == "single"
        assert "no sharded engine" in plan.groups[0].backend.reason

    def test_backend_sharded_needs_width_and_coverage(self, mod):
        stats = StoreStats(object_count=100, segment_count=500, shard_coverage=1.0)
        model = CostModel(sharded_min_group=2)
        asts = [parse_query(_text("q")), parse_query(_text("near"))]
        plan = compile_queries(
            asts, mod, cost_model=model, stats=stats, sharded_available=True
        )
        assert plan.groups[0].backend.sharded

        narrow = compile_queries(
            asts[:1], mod, cost_model=model, stats=stats, sharded_available=True
        )
        assert narrow.groups[0].backend.backend == "single"

        uncovered = StoreStats(
            object_count=100, segment_count=500, shard_coverage=0.1
        )
        plan = compile_queries(
            asts, mod, cost_model=model, stats=uncovered, sharded_available=True
        )
        assert plan.groups[0].backend.backend == "single"
        assert "coverage" in plan.groups[0].backend.reason

    def test_rank_statements_never_count_toward_sharded_width(self, mod):
        stats = StoreStats(object_count=100, segment_count=500, shard_coverage=1.0)
        model = CostModel(sharded_min_group=2)
        rank_text = (
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= 2"
        )
        asts = [parse_query(rank_text), parse_query(rank_text)]
        plan = compile_queries(
            asts, mod, cost_model=model, stats=stats, sharded_available=True
        )
        assert plan.groups[0].backend.backend == "single"


class TestExplain:
    def test_plan_tree_renders_every_stage(self, mod):
        rendered = explain_plan([_text("q"), _text("near")], mod)
        for label in ("Merge", "Prepare", "CorridorFilter", "BandIntervals", "Answer"):
            assert label in rendered
        assert "statements=2" in rendered
        assert "backend=single" in rendered

    def test_explain_with_execution_appends_span_tree(self, mod):
        rendered = explain_plan(_text("q"), mod, execute=True)
        assert "Merge" in rendered
        assert "planner.execute" in rendered


class TestExecutor:
    def test_repeated_execution_hits_the_context_cache(self, mod):
        executor = QueryExecutor(mod)
        executor.execute(_text("q"))
        assert executor.cache_info().hits == 0
        executor.execute(_text("q"))
        assert executor.cache_info().hits > 0

    def test_module_level_execute_query_reuses_one_executor(self, mod):
        execute_query(_text("q"), mod)
        execute_query(_text("q"), mod)
        assert executor_for(mod).cache_info().hits > 0

    def test_execute_many_preserves_submission_order(self, mod):
        texts = [
            _text("q"),
            _text("near", t_end=30.0),
            _text("q", t_end=30.0),
        ]
        results = execute_many(texts, mod)
        assert [r.ast.predicate.query_object for r in results] == [
            "q",
            "near",
            "q",
        ]

    def test_answers_are_canonically_sorted(self, mod):
        result = execute_query(_text("q"), mod)
        assert result.object_ids == sorted(result.object_ids, key=str)

    def test_target_restriction(self, mod):
        holds = execute_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'crossing'",
            mod,
        )
        fails = execute_query(
            "SELECT T FROM MOD WHERE FORALL TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'crossing'",
            mod,
        )
        assert holds.holds and holds.object_ids == ["crossing"]
        assert not fails.holds

    def test_planner_metrics_land_in_the_registry(self, mod):
        registry = MetricsRegistry()
        executor = QueryExecutor(mod, registry=registry)
        executor.execute_many([_text("q"), _text("near")])
        assert registry.get("repro_planner_compilations_total").value == 1
        assert registry.get("repro_planner_statements_total").value == 2
        assert registry.get("repro_planner_group_width").count == 1
        assert (
            registry.get(
                "repro_planner_backend_statements_total", backend="single"
            ).value
            == 2
        )
        assert registry.get("repro_planner_execute_seconds").count == 1

    def test_store_growth_reprices_the_access_decision(self, mod):
        executor = QueryExecutor(mod)
        assert not executor.access.use_index
        fleet, _ = multi_query_fleet(num_vehicles=60, num_queries=2)
        mod.add_all(list(fleet))
        executor.execute(_text("q", t_end=30.0))
        assert executor.access.use_index
        assert executor.engine.index is not None
