"""Tests for continuous threshold NN queries (the future-work extension)."""

import pytest

from repro.core.continuous import ContinuousProbabilisticNNQuery
from repro.core.thresholds import continuous_threshold_nn_query, probability_timeline
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory


@pytest.fixture
def mod() -> MovingObjectsDatabase:
    return MovingObjectsDatabase(
        [
            straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
            straight_trajectory("dominant", (0.0, 1.2), (30.0, 1.2)),
            straight_trajectory("secondary", (0.0, -1.8), (30.0, -1.8)),
            straight_trajectory("irrelevant", (0.0, 25.0), (30.0, 25.0)),
        ]
    )


@pytest.fixture
def query(mod) -> ContinuousProbabilisticNNQuery:
    return ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)


class TestThresholdQuery:
    def test_dominant_object_clears_high_threshold(self, query, mod):
        results = continuous_threshold_nn_query(
            query.context, mod, probability_threshold=0.6, min_time_fraction=0.5,
            time_samples=4, grid_size=96,
        )
        ids = [result.object_id for result in results]
        assert "dominant" in ids
        assert "irrelevant" not in ids

    def test_secondary_object_fails_high_threshold(self, query, mod):
        results = continuous_threshold_nn_query(
            query.context, mod, probability_threshold=0.6, min_time_fraction=0.5,
            time_samples=4, grid_size=96,
        )
        assert "secondary" not in [result.object_id for result in results]

    def test_low_threshold_admits_secondary(self, query, mod):
        results = continuous_threshold_nn_query(
            query.context, mod, probability_threshold=0.05, min_time_fraction=0.5,
            time_samples=4, grid_size=96,
        )
        ids = [result.object_id for result in results]
        assert "dominant" in ids and "secondary" in ids

    def test_results_sorted_by_fraction(self, query, mod):
        results = continuous_threshold_nn_query(
            query.context, mod, probability_threshold=0.05, min_time_fraction=0.0,
            time_samples=4, grid_size=96,
        )
        fractions = [result.fraction_above_threshold for result in results]
        assert fractions == sorted(fractions, reverse=True)

    def test_facade_wrapper(self, query):
        results = query.threshold_query(0.6, 0.5, time_samples=3)
        assert any(result.object_id == "dominant" for result in results)

    def test_parameter_validation(self, query, mod):
        with pytest.raises(ValueError):
            continuous_threshold_nn_query(query.context, mod, 1.5, 0.5)
        with pytest.raises(ValueError):
            continuous_threshold_nn_query(query.context, mod, 0.5, -0.1)
        with pytest.raises(ValueError):
            continuous_threshold_nn_query(query.context, mod, 0.5, 0.5, time_samples=0)


class TestProbabilityTimeline:
    def test_series_shapes_and_bounds(self, query, mod):
        series = probability_timeline(
            query.context, mod, ["dominant", "secondary"], time_samples=5, grid_size=96
        )
        assert set(series) == {"dominant", "secondary"}
        for values in series.values():
            assert len(values) == 5
            assert all(0.0 <= value <= 1.0 for value in values)

    def test_dominant_series_dominates(self, query, mod):
        series = probability_timeline(
            query.context, mod, ["dominant", "secondary"], time_samples=4, grid_size=96
        )
        assert all(
            a >= b for a, b in zip(series["dominant"], series["secondary"])
        )

    def test_sample_validation(self, query, mod):
        with pytest.raises(ValueError):
            probability_timeline(query.context, mod, ["dominant"], time_samples=1)
