"""Oracle discipline: planned answers are byte-identical to the naive interpreter.

Every statement the planner serves — fused, cached, index-filtered, or
sharded — must return exactly the ids the pinned per-query interpreter
(:func:`~repro.query_language.execute_query_naive`) returns, in the same
(canonical) order.  The CI ``planner-equality`` step runs this module with
the sharded process backend included.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import ShardedEngine
from repro.query_language import (
    CostModel,
    QueryExecutor,
    execute_query_naive,
)
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory
from repro.uncertainty.uniform import UniformDiskPDF
from repro.workloads.scenarios import multi_query_fleet


def _statements(query_ids, t_start, t_end):
    """One statement of every AST shape over a shared window."""
    q0, q1, q2 = (str(query_ids[i % len(query_ids)]) for i in range(3))
    window = f"TIME IN [{t_start}, {t_end}]"
    return [
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND PROBABILITY_NN(T, '{q0}', TIME) > 0",
        f"SELECT T FROM MOD WHERE FORALL {window} "
        f"AND PROBABILITY_NN(T, '{q1}', TIME) > 0",
        f"SELECT T FROM MOD WHERE FRACTION {window} >= 0.25 "
        f"AND PROBABILITY_NN(T, '{q2}', TIME) > 0",
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND RANK_NN(T, '{q0}', TIME) <= 3",
        f"SELECT T FROM MOD WHERE FORALL {window} "
        f"AND RANK_NN(T, '{q1}', TIME) <= 2",
        f"SELECT T FROM MOD WHERE FRACTION {window} >= 0.3 "
        f"AND RANK_NN(T, '{q2}', TIME) <= 4",
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND PROBABILITY_NN(T, '{q0}', TIME) > 0 AND T = '{q1}'",
        f"SELECT T FROM MOD WHERE EXISTS {window} "
        f"AND RANK_NN(T, '{q0}', TIME) <= 2 AND T = '{q2}'",
    ]


def _assert_equal_to_oracle(executor, mod, texts):
    planned = executor.execute_many(texts)
    for position, text in enumerate(texts):
        oracle = execute_query_naive(text, mod)
        assert planned[position].object_ids == oracle.object_ids, (
            f"statement {position} diverged from the naive oracle:\n{text}\n"
            f"planned={planned[position].object_ids}\n"
            f"oracle ={oracle.object_ids}"
        )


class TestSingleEngineOracle:
    @pytest.fixture(scope="class")
    def fleet(self):
        return multi_query_fleet(num_vehicles=30, num_queries=6, seed=11)

    def test_all_categories_match_the_oracle(self, fleet):
        mod, query_ids = fleet
        t_lo, t_hi = mod.common_time_span()
        executor = QueryExecutor(mod)
        _assert_equal_to_oracle(executor, mod, _statements(query_ids, t_lo, t_hi))

    def test_equality_survives_cache_reuse(self, fleet):
        mod, query_ids = fleet
        t_lo, t_hi = mod.common_time_span()
        executor = QueryExecutor(mod)
        texts = _statements(query_ids, t_lo, t_hi)
        _assert_equal_to_oracle(executor, mod, texts)
        # Second pass serves contexts from the LRU cache; answers must not move.
        _assert_equal_to_oracle(executor, mod, texts)
        assert executor.cache_info().hits > 0

    def test_equality_with_band_width_override(self, fleet):
        mod, query_ids = fleet
        t_lo, t_hi = mod.common_time_span()
        executor = QueryExecutor(mod)
        text = (
            f"SELECT T FROM MOD WHERE EXISTS TIME IN [{t_lo}, {t_hi}] "
            f"AND PROBABILITY_NN(T, '{query_ids[0]}', TIME) > 0"
        )
        for band in (0.5, 2.0, 8.0):
            planned = executor.execute(text, band_width=band)
            oracle = execute_query_naive(text, mod, band_width=band)
            assert planned.object_ids == oracle.object_ids

    def test_equality_on_partial_windows(self, fleet):
        mod, query_ids = fleet
        t_lo, t_hi = mod.common_time_span()
        executor = QueryExecutor(mod)
        quarter = (t_hi - t_lo) / 4
        for start in (t_lo, t_lo + quarter, t_lo + 2 * quarter):
            texts = _statements(query_ids, start, start + quarter)
            _assert_equal_to_oracle(executor, mod, texts)


class TestShardedOracle:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sharded_groups_match_the_oracle(self, backend):
        mod, query_ids = multi_query_fleet(
            num_vehicles=24, num_queries=6, seed=17
        )
        t_lo, t_hi = mod.common_time_span()
        texts = _statements(query_ids, t_lo, t_hi)
        with ShardedEngine(mod, num_shards=2, backend=backend) as sharded:
            executor = QueryExecutor(
                mod, sharded=sharded, cost_model=CostModel(sharded_min_group=2)
            )
            plan = executor.compile(texts)
            assert any(group.backend.sharded for group in plan.groups)
            _assert_equal_to_oracle(executor, mod, texts)

    def test_missing_sharded_engine_falls_back_to_single(self):
        mod, query_ids = multi_query_fleet(
            num_vehicles=24, num_queries=4, seed=19
        )
        t_lo, t_hi = mod.common_time_span()
        texts = _statements(query_ids, t_lo, t_hi)
        with ShardedEngine(mod, num_shards=2, backend="serial") as sharded:
            executor = QueryExecutor(
                mod, sharded=sharded, cost_model=CostModel(sharded_min_group=2)
            )
            plan = executor.compile(texts)
            assert any(group.backend.sharded for group in plan.groups)
            # Execute without the sharded engine: the planned-sharded slice
            # must fall back to the single engine with identical answers.
            execution = plan.execute(executor.engine, sharded=None)
            assert execution.telemetry.fallbacks > 0
        for position, text in enumerate(texts):
            oracle = execute_query_naive(text, mod)
            assert execution.answers[position] == oracle.object_ids


coordinate = st.floats(
    min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False
)

SAMPLE_TIMES = (0.0, 4.0, 10.0)


@st.composite
def fleets(draw, min_size=4, max_size=8):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    radius = draw(st.sampled_from([0.1, 0.3]))
    pdf = UniformDiskPDF(radius)
    trajectories = []
    for index in range(count):
        samples = [
            TrajectorySample(draw(coordinate), draw(coordinate), t)
            for t in SAMPLE_TIMES
        ]
        trajectories.append(
            UncertainTrajectory(f"o{index}", samples, radius, pdf)
        )
    return MovingObjectsDatabase(trajectories)


class TestPlannerInvariance:
    @settings(max_examples=10, deadline=None)
    @given(
        mod=fleets(),
        window=st.tuples(
            st.floats(min_value=0.0, max_value=4.0),
            st.floats(min_value=5.0, max_value=10.0),
        ),
        rank=st.integers(min_value=1, max_value=4),
        fraction=st.sampled_from([0.0, 0.25, 0.5]),
    )
    def test_planned_answers_equal_naive_answers(
        self, mod, window, rank, fraction
    ):
        t_start, t_end = window
        query_ids = list(mod.object_ids)[:3]
        texts = []
        for query_id in query_ids:
            texts.append(
                f"SELECT T FROM MOD WHERE EXISTS TIME IN [{t_start}, {t_end}] "
                f"AND PROBABILITY_NN(T, '{query_id}', TIME) > 0"
            )
            texts.append(
                f"SELECT T FROM MOD WHERE FRACTION TIME IN [{t_start}, {t_end}] "
                f">= {fraction} AND PROBABILITY_NN(T, '{query_id}', TIME) > 0"
            )
            texts.append(
                f"SELECT T FROM MOD WHERE EXISTS TIME IN [{t_start}, {t_end}] "
                f"AND RANK_NN(T, '{query_id}', TIME) <= {rank}"
            )
        # An eager cost model forces the index path even on tiny stores,
        # exercising the corridor filter against the unfiltered oracle.
        executor = QueryExecutor(
            mod, cost_model=CostModel(index_min_objects=1, index_min_segments=1)
        )
        _assert_equal_to_oracle(executor, mod, texts)
