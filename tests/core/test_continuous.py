"""Tests for the ContinuousProbabilisticNNQuery façade."""

import pytest

from repro.core.continuous import ContinuousProbabilisticNNQuery
from repro.index.grid import GridIndex
from repro.index.rtree import STRRTree
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory


@pytest.fixture
def mod(tiny_mod) -> MovingObjectsDatabase:
    return tiny_mod


@pytest.fixture
def query(mod) -> ContinuousProbabilisticNNQuery:
    return ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)


class TestConstruction:
    def test_default_band_width_is_4r(self, query):
        assert query.band_width == pytest.approx(2.0)  # 4 × 0.5

    def test_explicit_band_width(self, mod):
        query = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0, band_width=1.0)
        assert query.band_width == 1.0

    def test_unknown_query_id_raises(self, mod):
        with pytest.raises(KeyError):
            ContinuousProbabilisticNNQuery(mod, "missing", 0.0, 60.0)

    def test_empty_window_rejected(self, mod):
        with pytest.raises(ValueError):
            ContinuousProbabilisticNNQuery(mod, "q", 60.0, 0.0)

    def test_negative_band_rejected(self, mod):
        with pytest.raises(ValueError):
            ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0, band_width=-1.0)

    def test_explicit_candidate_restriction(self, mod):
        query = ContinuousProbabilisticNNQuery(
            mod, "q", 0.0, 60.0, candidate_ids=["near"]
        )
        assert query.all_with_nonzero_probability_sometime() == ["near"]

    def test_empty_candidate_set_rejected(self, mod):
        with pytest.raises(ValueError):
            ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0, candidate_ids=[])

    def test_single_object_database_rejected(self):
        lonely = MovingObjectsDatabase(
            [straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))]
        )
        with pytest.raises(ValueError):
            ContinuousProbabilisticNNQuery(lonely, "q", 0.0, 60.0)


class TestCategoryFacades:
    def test_category1(self, query):
        assert query.has_nonzero_probability_sometime("near")
        assert query.has_nonzero_probability_always("near")
        assert query.has_nonzero_probability_sometime("crossing")
        assert not query.has_nonzero_probability_always("crossing")
        assert not query.has_nonzero_probability_sometime("far")
        assert 0.0 < query.nonzero_probability_fraction("crossing") < 1.0
        assert query.has_nonzero_probability_at_least("near", 0.9)
        assert query.nonzero_probability_intervals("far") == []

    def test_category2(self, query):
        assert query.is_ranked_within_sometime("near", 1)
        assert query.is_ranked_within_sometime("crossing", 2)
        assert query.ranked_within_fraction("near", 2) == pytest.approx(1.0, abs=1e-6)
        assert query.is_ranked_within_at_least("near", 1, 0.5)

    def test_category3(self, query):
        sometime = set(query.all_with_nonzero_probability_sometime())
        always = set(query.all_with_nonzero_probability_always())
        at_least_half = set(query.all_with_nonzero_probability_at_least(0.5))
        assert sometime == {"near", "crossing"}
        assert always == {"near"}
        assert always <= at_least_half <= sometime

    def test_category4(self, query):
        assert set(query.all_ranked_within_sometime(1)) >= {"near"}
        assert "near" in query.all_ranked_within_always(2)
        assert "near" in query.all_ranked_within_at_least(2, 0.5)

    def test_fixed_time_variants(self, query):
        assert "near" in query.candidates_at(10.0)
        assert "far" not in query.candidates_at(10.0)
        ranking = query.ranking_at(30.0, 2)
        assert ranking[0] in ("near", "crossing")

    def test_answer_tree(self, query):
        tree = query.answer_tree(max_levels=2)
        assert tree.query_id == "q"
        assert tree.depth() <= 2
        assert "far" not in tree.labelled_object_ids()

    def test_answer_tree_with_descriptors(self, query):
        tree = query.answer_tree(max_levels=1, with_descriptors=True, descriptor_samples=2)
        assert all(node.descriptor is not None for node in tree.walk())

    def test_pruning_statistics(self, query):
        stats = query.pruning_statistics()
        assert stats.total_candidates == 3
        assert stats.surviving_candidates == 2


class TestIndexPrefiltering:
    def test_grid_prefilter_keeps_answers_identical(self, mod):
        plain = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)
        index = GridIndex.covering(list(mod), cells=16)
        filtered = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0, index=index)
        assert set(filtered.all_with_nonzero_probability_sometime()) == set(
            plain.all_with_nonzero_probability_sometime()
        )

    def test_rtree_prefilter_keeps_answers_identical(self, mod):
        plain = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)
        index = STRRTree.from_trajectories(list(mod))
        filtered = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0, index=index)
        assert set(filtered.all_with_nonzero_probability_sometime()) == set(
            plain.all_with_nonzero_probability_sometime()
        )
