"""Tests for the 4r pruning band and band-membership predicates."""

import numpy as np
import pytest

from repro.core.pruning import (
    band_intervals,
    is_within_band_always,
    is_within_band_sometime,
    minimum_band_gap,
    prune_by_band,
    time_within_band,
    PruningStatistics,
)
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.utils.validation import intervals_are_disjoint, total_interval_length

from ..conftest import make_linear_function, random_functions


@pytest.fixture
def scenario():
    """Envelope owned by 'near'; 'dipping' enters the band mid-window; 'far' never does."""
    near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)          # distance 1
    dipping = make_linear_function("dipping", -10.0, 2.5, 2.0, 0.0)  # dips to 2.5 at t=5
    far = make_linear_function("far", 50.0, 0.0, 0.0, 0.0)           # distance 50
    functions = [near, dipping, far]
    envelope = lower_envelope(functions, 0.0, 10.0)
    return functions, envelope


class TestBandIntervals:
    def test_envelope_owner_is_always_inside(self, scenario):
        functions, envelope = scenario
        near = functions[0]
        intervals = band_intervals(near, envelope, 2.0, 0.0, 10.0)
        assert total_interval_length(intervals) == pytest.approx(10.0, abs=1e-6)

    def test_far_object_has_no_intervals(self, scenario):
        functions, envelope = scenario
        far = functions[2]
        assert band_intervals(far, envelope, 2.0, 0.0, 10.0) == []

    def test_dipping_object_has_partial_interval(self, scenario):
        functions, envelope = scenario
        dipping = functions[1]
        intervals = band_intervals(dipping, envelope, 2.0, 0.0, 10.0)
        assert intervals
        covered = total_interval_length(intervals)
        assert 0.0 < covered < 10.0
        # The dip is centered around t = 5 (closest approach of the dipping object).
        assert any(start <= 5.0 <= end for start, end in intervals)

    def test_intervals_are_disjoint_and_inside_window(self, rng):
        functions = random_functions(12, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        for function in functions:
            intervals = band_intervals(function, envelope, 1.5, 0.0, 10.0)
            assert intervals_are_disjoint(intervals)
            for start, end in intervals:
                assert 0.0 - 1e-9 <= start <= end <= 10.0 + 1e-9

    def test_intervals_match_dense_sampling(self, rng):
        functions = random_functions(10, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        band = 2.0
        times = np.linspace(0.0, 10.0, 2001)
        for function in functions[:5]:
            intervals = band_intervals(function, envelope, band, 0.0, 10.0)

            def inside(t):
                return any(start - 1e-6 <= t <= end + 1e-6 for start, end in intervals)

            for t in times:
                expected = function.value(float(t)) <= envelope.value(float(t)) + band
                if expected and not inside(float(t)):
                    # Allow disagreement only within a hair of an interval edge.
                    assert min(
                        abs(float(t) - edge)
                        for interval in intervals or [(-1e9, -1e9)]
                        for edge in interval
                    ) < 5e-3
                if not expected and inside(float(t)):
                    gap = function.value(float(t)) - envelope.value(float(t)) - band
                    assert gap < 1e-3

    def test_zero_band_width(self, scenario):
        functions, envelope = scenario
        near = functions[0]
        intervals = band_intervals(near, envelope, 0.0, 0.0, 10.0)
        assert total_interval_length(intervals) == pytest.approx(10.0, abs=1e-6)

    def test_negative_band_rejected(self, scenario):
        functions, envelope = scenario
        with pytest.raises(ValueError):
            band_intervals(functions[0], envelope, -1.0, 0.0, 10.0)

    def test_zero_length_window(self, scenario):
        functions, envelope = scenario
        assert band_intervals(functions[0], envelope, 1.0, 5.0, 5.0) == [(5.0, 5.0)]
        assert band_intervals(functions[2], envelope, 1.0, 5.0, 5.0) == []


class TestPredicates:
    def test_sometime_and_always(self, scenario):
        functions, envelope = scenario
        near, dipping, far = functions
        assert is_within_band_sometime(near, envelope, 2.0, 0.0, 10.0)
        assert is_within_band_always(near, envelope, 2.0, 0.0, 10.0)
        assert is_within_band_sometime(dipping, envelope, 2.0, 0.0, 10.0)
        assert not is_within_band_always(dipping, envelope, 2.0, 0.0, 10.0)
        assert not is_within_band_sometime(far, envelope, 2.0, 0.0, 10.0)

    def test_time_within_band_bounds(self, scenario):
        functions, envelope = scenario
        near, dipping, far = functions
        assert time_within_band(near, envelope, 2.0, 0.0, 10.0) == pytest.approx(10.0, abs=1e-6)
        assert time_within_band(far, envelope, 2.0, 0.0, 10.0) == 0.0
        partial = time_within_band(dipping, envelope, 2.0, 0.0, 10.0)
        assert 0.0 < partial < 10.0

    def test_wider_band_keeps_more_time(self, scenario):
        functions, envelope = scenario
        dipping = functions[1]
        narrow = time_within_band(dipping, envelope, 1.0, 0.0, 10.0)
        wide = time_within_band(dipping, envelope, 4.0, 0.0, 10.0)
        assert wide >= narrow

    def test_minimum_band_gap(self, scenario):
        functions, envelope = scenario
        near, dipping, far = functions
        assert minimum_band_gap(near, envelope, 0.0, 10.0) == pytest.approx(0.0, abs=1e-9)
        assert minimum_band_gap(far, envelope, 0.0, 10.0) > 40.0


class TestPruneByBand:
    def test_statistics(self, scenario):
        functions, envelope = scenario
        survivors, stats = prune_by_band(functions, envelope, 2.0, 0.0, 10.0)
        assert stats.total_candidates == 3
        assert stats.surviving_candidates == 2
        assert stats.pruned_candidates == 1
        assert stats.survival_ratio == pytest.approx(2.0 / 3.0)
        assert stats.pruning_ratio == pytest.approx(1.0 / 3.0)
        assert {f.object_id for f in survivors} == {"near", "dipping"}

    def test_envelope_owners_always_survive(self, rng):
        functions = random_functions(15, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        survivors, _ = prune_by_band(functions, envelope, 0.5, 0.0, 10.0)
        survivor_ids = {f.object_id for f in survivors}
        assert set(envelope.distinct_owner_ids) <= survivor_ids

    def test_zero_candidates_statistics(self):
        stats = PruningStatistics(0, 0)
        assert stats.survival_ratio == 0.0
        assert stats.pruning_ratio == 1.0

    def test_band_grows_survivor_count_monotonically(self, rng):
        functions = random_functions(20, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        counts = []
        for band in (0.5, 2.0, 8.0, 32.0):
            survivors, _ = prune_by_band(functions, envelope, band, 0.0, 10.0)
            counts.append(len(survivors))
        assert counts == sorted(counts)
        assert counts[-1] == 20  # a huge band keeps everyone
