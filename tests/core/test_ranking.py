"""Tests for Theorem 1: distance ranking vs probability ranking."""

import pytest

from repro.core.ranking import (
    expected_distances_at,
    monte_carlo_ranking,
    nn_probability_snapshot,
    ranking_by_expected_distance,
    ranking_by_nn_probability,
    validate_theorem1,
)
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory


@pytest.fixture
def clustered_mod() -> MovingObjectsDatabase:
    """Query plus three candidates that all stay probability-relevant.

    The candidates run parallel to the query at 1.2, 2.0 and 2.8 miles — all
    within each other's R_min/R_max rings for r = 0.5 — so every one has
    non-zero NN probability and Theorem 1's ordering claim has bite.
    """
    return MovingObjectsDatabase(
        [
            straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
            straight_trajectory("first", (0.0, 1.2), (30.0, 1.2)),
            straight_trajectory("second", (0.0, -2.0), (30.0, -2.0)),
            straight_trajectory("third", (0.0, 2.8), (30.0, 2.8)),
        ]
    )


class TestExpectedDistances:
    def test_distances_exclude_query(self, clustered_mod):
        distances = expected_distances_at(clustered_mod, "q", 30.0)
        assert set(distances) == {"first", "second", "third"}
        assert distances["first"] == pytest.approx(1.2)
        assert distances["second"] == pytest.approx(2.0)

    def test_distance_ranking(self, clustered_mod):
        ranking = ranking_by_expected_distance(clustered_mod, "q", 30.0)
        assert ranking == ["first", "second", "third"]


class TestProbabilityRanking:
    def test_probability_ranking_matches_distance_ranking(self, clustered_mod):
        by_probability = ranking_by_nn_probability(clustered_mod, "q", 30.0, grid_size=256)
        assert by_probability == ["first", "second", "third"]

    def test_snapshot_probabilities_are_sane(self, clustered_mod):
        snapshot = nn_probability_snapshot(clustered_mod, "q", 30.0, grid_size=256)
        assert snapshot["first"] > snapshot["second"] > snapshot["third"]
        assert 0.0 < sum(snapshot.values()) <= 1.0 + 1e-6

    def test_crisp_query_variant(self, clustered_mod):
        ranking = ranking_by_nn_probability(
            clustered_mod, "q", 30.0, grid_size=256, query_is_crisp=True
        )
        assert ranking[0] == "first"


class TestTheorem1Validation:
    def test_validation_agrees_on_clustered_scenario(self, clustered_mod):
        comparison = validate_theorem1(clustered_mod, "q", 30.0, top_k=3, grid_size=256)
        assert comparison.agrees
        assert comparison.distance_ranking == comparison.probability_ranking

    def test_validation_restricts_to_meaningful_prefix(self, clustered_mod):
        # Ask for more ranks than there are probability-bearing candidates:
        # the comparison must clamp rather than fail on noise.
        comparison = validate_theorem1(clustered_mod, "q", 30.0, top_k=10, grid_size=256)
        assert comparison.agrees

    def test_monte_carlo_referee_agrees_on_top1(self, clustered_mod, rng):
        sampled = monte_carlo_ranking(clustered_mod, "q", 30.0, samples=8000, rng=rng)
        assert sampled[0] == "first"
