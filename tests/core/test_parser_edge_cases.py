"""Parser error paths and edge cases the grammar promises to enforce.

The parser had no dedicated negative coverage — only a handful of
malformed strings in ``test_query_language.py``.  This module pins every
rule: quantifier variants, token-level failures, targeted (Category 1/2)
vs open (Category 3/4) forms, and band-width override plumbing through
the planner down to the prepared group.
"""

import pytest

from repro.query_language import (
    QueryLanguageError,
    Quantifier,
    compile_queries,
    execute_query,
    execute_query_naive,
    parse_query,
    tokenize,
)
from repro.trajectories.mod import MovingObjectsDatabase

from ..conftest import straight_trajectory

OPEN_PROBABILITY = (
    "SELECT T FROM MOD WHERE {quantifier} "
    "AND PROBABILITY_NN(T, 'q', TIME) > 0"
)


class TestQuantifierVariants:
    @pytest.mark.parametrize(
        "clause, quantifier, fraction",
        [
            ("EXISTS TIME IN [0, 60]", Quantifier.EXISTS, None),
            ("FORALL TIME IN [0, 60]", Quantifier.FORALL, None),
            ("FRACTION TIME IN [0, 60] >= 0.5", Quantifier.FRACTION, 0.5),
            ("fraction time in [0, 60] >= 0", Quantifier.FRACTION, 0.0),
            ("FRACTION TIME IN [0, 60] >= 1", Quantifier.FRACTION, 1.0),
            ("FRACTION TIME IN [0, 60] >= 2.5e-1", Quantifier.FRACTION, 0.25),
        ],
    )
    def test_quantifier_forms_parse(self, clause, quantifier, fraction):
        ast = parse_query(OPEN_PROBABILITY.format(quantifier=clause))
        assert ast.quantifier is quantifier
        if fraction is None:
            assert ast.min_fraction is None
        else:
            assert ast.min_fraction == pytest.approx(fraction)

    def test_fraction_without_bound_rejected(self):
        with pytest.raises(QueryLanguageError):
            parse_query(OPEN_PROBABILITY.format(quantifier="FRACTION TIME IN [0, 60]"))

    def test_exists_with_stray_bound_rejected(self):
        with pytest.raises(QueryLanguageError):
            parse_query(
                OPEN_PROBABILITY.format(quantifier="EXISTS TIME IN [0, 60] >= 0.5")
            )

    def test_unknown_quantifier_rejected(self):
        with pytest.raises(QueryLanguageError):
            parse_query(OPEN_PROBABILITY.format(quantifier="SOMETIMES TIME IN [0, 60]"))


class TestMalformedTokens:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT",
            "SELECT T FROM MOD",
            "SELECT T FROM MOD WHERE",
            "SELECT T FROM MOD WHERE EXISTS TIME IN 0, 60 "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) >= 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0.1",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= 1.5",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= -2",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) > 2",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND NEAREST(T, 'q', TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN('q', TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, [], TIME) > 0",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = ",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T 'a'",
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'a' extra",
        ],
    )
    def test_rejected_with_query_language_error(self, text):
        with pytest.raises(QueryLanguageError):
            parse_query(text)

    def test_reversed_window_rejected_at_parse_time(self):
        with pytest.raises(QueryLanguageError):
            parse_query(
                "SELECT T FROM MOD WHERE EXISTS TIME IN [60, 0] "
                "AND PROBABILITY_NN(T, 'q', TIME) > 0"
            )

    def test_lexical_errors_carry_positions(self):
        with pytest.raises(QueryLanguageError) as excinfo:
            tokenize("SELECT ? FROM MOD")
        assert "position" in str(excinfo.value)

    def test_parse_errors_carry_positions(self):
        with pytest.raises(QueryLanguageError) as excinfo:
            parse_query("SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] OR x")
        assert "position" in str(excinfo.value)


class TestTargetedVersusOpenForms:
    def test_open_probability_forms_are_category_3(self):
        for clause in (
            "EXISTS TIME IN [0, 60]",
            "FORALL TIME IN [0, 60]",
            "FRACTION TIME IN [0, 60] >= 0.5",
        ):
            ast = parse_query(OPEN_PROBABILITY.format(quantifier=clause))
            assert ast.category == 3
            assert ast.target_object is None

    def test_open_rank_forms_are_category_4(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= 2"
        )
        assert ast.category == 4

    def test_targeted_probability_is_category_1(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, 'q', TIME) > 0 AND T = 'a'"
        )
        assert ast.category == 1
        assert ast.target_object == "a"

    def test_targeted_rank_is_category_2(self):
        ast = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND RANK_NN(T, 'q', TIME) <= 2 AND T = 42"
        )
        assert ast.category == 2
        assert ast.target_object == 42

    def test_quoted_and_bare_target_literals(self):
        quoted = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            'AND PROBABILITY_NN(T, "q", TIME) > 0 AND T = "veh-3"'
        )
        bare = parse_query(
            "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
            "AND PROBABILITY_NN(T, q7, TIME) > 0 AND T = other_id"
        )
        assert quoted.target_object == "veh-3"
        assert quoted.predicate.query_object == "q"
        assert bare.predicate.query_object == "q7"
        assert bare.target_object == "other_id"


class TestBandWidthPlumbing:
    @pytest.fixture
    def mod(self) -> MovingObjectsDatabase:
        return MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
                straight_trajectory("near", (0.0, 2.0), (30.0, 2.0)),
                straight_trajectory("mid", (0.0, 8.0), (30.0, 8.0)),
                straight_trajectory("far", (0.0, 30.0), (30.0, 30.0)),
            ]
        )

    TEXT = (
        "SELECT T FROM MOD WHERE EXISTS TIME IN [0, 60] "
        "AND PROBABILITY_NN(T, 'q', TIME) > 0"
    )

    def test_override_reaches_the_plan_group(self, mod):
        plan = compile_queries([parse_query(self.TEXT)], mod, band_width=3.5)
        assert plan.groups[0].band_width == 3.5
        assert "3.5" in plan.explain()

    def test_default_band_renders_as_4r(self, mod):
        plan = compile_queries([parse_query(self.TEXT)], mod)
        assert plan.groups[0].band_width is None
        assert "default(4r)" in plan.explain()

    def test_band_width_changes_the_answer_set_consistently(self, mod):
        narrow = execute_query(self.TEXT, mod, band_width=0.5)
        wide = execute_query(self.TEXT, mod, band_width=12.0)
        assert set(narrow.object_ids) <= set(wide.object_ids)
        assert "mid" in wide.object_ids
        for band in (0.5, 12.0):
            planned = execute_query(self.TEXT, mod, band_width=band)
            oracle = execute_query_naive(self.TEXT, mod, band_width=band)
            assert planned.object_ids == oracle.object_ids
