"""Incremental maintenance of the R-tree and grid vs bulk rebuilds."""

import numpy as np
import pytest

from repro.index.boxes import Box3D, IndexEntry, segment_boxes
from repro.index.grid import GridIndex
from repro.index.rtree import STRRTree
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories


@pytest.fixture(scope="module")
def trajectories():
    return generate_trajectories(RandomWaypointConfig(num_objects=40, seed=21))


def probe_grid(index, trajectories, seed=0, probes=60):
    """Corridor probes over random trajectories/distances (deterministic)."""
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(probes):
        query = trajectories[int(rng.integers(len(trajectories)))]
        distance = float(rng.uniform(0.1, 20.0))
        results.append(
            index.query_corridor(query, distance, query.start_time, query.end_time)
        )
    return results


class TestRTreeInsert:
    def test_insert_into_empty_tree(self):
        tree = STRRTree([], leaf_capacity=4)
        entry = IndexEntry(Box3D(0, 0, 0, 1, 1, 1), "x")
        tree.insert_entry(entry)
        assert len(tree) == 1
        assert tree.query_box(Box3D(0.5, 0.5, 0.5, 2, 2, 2)) == {"x"}

    def test_incremental_tree_answers_like_bulk_tree(self, trajectories):
        bulk = STRRTree.from_trajectories(
            trajectories, leaf_capacity=8, max_box_extent=15.0
        )
        tree = STRRTree([], leaf_capacity=8, max_box_extent=15.0)
        for trajectory in trajectories:
            tree.insert_trajectory(trajectory)
        assert len(tree) == len(bulk)
        for expected, actual in zip(
            probe_grid(bulk, trajectories), probe_grid(tree, trajectories)
        ):
            assert expected == actual

    def test_insert_splits_overflowing_leaves(self):
        tree = STRRTree([], leaf_capacity=2)
        for index in range(20):
            tree.insert_entry(
                IndexEntry(
                    Box3D(index, index, 0.0, index + 1, index + 1, 1.0), index
                )
            )
        assert len(tree) == 20
        assert tree.height >= 3
        assert tree.query_box(Box3D(0, 0, 0, 30, 30, 1)) == set(range(20))


class TestRTreeRemove:
    def test_remove_object_drops_all_its_entries(self, trajectories):
        tree = STRRTree.from_trajectories(
            trajectories, leaf_capacity=8, max_box_extent=15.0
        )
        target = trajectories[0]
        expected = len(segment_boxes(target, max_extent=15.0))
        assert tree.remove_object(target.object_id) == expected
        for found in probe_grid(tree, trajectories):
            assert target.object_id not in found

    def test_remove_then_reinsert_restores_answers(self, trajectories):
        tree = STRRTree.from_trajectories(
            trajectories, leaf_capacity=8, max_box_extent=15.0
        )
        baseline = probe_grid(tree, trajectories)
        for trajectory in trajectories[:10]:
            tree.remove_object(trajectory.object_id)
        for trajectory in trajectories[:10]:
            tree.insert_trajectory(trajectory)
        assert probe_grid(tree, trajectories) == baseline

    def test_removing_every_object_empties_the_tree(self, trajectories):
        tree = STRRTree.from_trajectories(trajectories[:5], leaf_capacity=4)
        for trajectory in trajectories[:5]:
            tree.remove_object(trajectory.object_id)
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.query_box(Box3D(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9)) == set()

    def test_remove_unknown_object_is_a_noop(self, trajectories):
        tree = STRRTree.from_trajectories(trajectories[:5], leaf_capacity=4)
        size = len(tree)
        assert tree.remove_object("ghost") == 0
        assert len(tree) == size


class TestDivergenceBoundedMaintenance:
    """remove/insert with `after=`: only post-divergence boxes are touched."""

    def extend(self, trajectory, extra_minutes=7.0):
        from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory

        last = trajectory.samples[-1]
        return UncertainTrajectory(
            trajectory.object_id,
            list(trajectory.samples)
            + [TrajectorySample(last.x + 1.0, last.y, last.t + extra_minutes)],
            trajectory.radius,
        )

    def test_rtree_partial_patch_matches_bulk_rebuild(self, trajectories):
        tree = STRRTree.from_trajectories(
            trajectories, leaf_capacity=8, max_box_extent=15.0
        )
        target = trajectories[0]
        extended = self.extend(target)
        removed = tree.remove_object(target.object_id, after=target.end_time)
        assert removed == 0, "a pure extension retires no historical boxes"
        inserted = tree.insert_trajectory(extended, after=target.end_time)
        assert inserted >= 1
        bulk = STRRTree.from_trajectories(
            [extended] + list(trajectories[1:]),
            leaf_capacity=8,
            max_box_extent=15.0,
        )
        assert len(tree) == len(bulk)
        for expected, actual in zip(
            probe_grid(bulk, trajectories, seed=5), probe_grid(tree, trajectories, seed=5)
        ):
            assert expected == actual

    def test_grid_partial_patch_matches_bulk_rebuild(self, trajectories):
        grid = GridIndex.covering(trajectories, cells=12, max_box_extent=15.0)
        target = trajectories[1]
        extended = self.extend(target)
        assert grid.remove_object(target.object_id, after=target.end_time) == 0
        grid.insert_trajectory(extended, after=target.end_time)
        bulk = GridIndex.covering(
            [extended if t.object_id == target.object_id else t for t in trajectories],
            cells=12,
            max_box_extent=15.0,
        )
        assert len(grid) == len(bulk)
        assert probe_grid(grid, trajectories, seed=6) == probe_grid(
            bulk, trajectories, seed=6
        )

    def test_grid_partial_then_full_removal_is_consistent(self, trajectories):
        grid = GridIndex.covering(trajectories, cells=12, max_box_extent=15.0)
        target = trajectories[2]
        midpoint = (target.start_time + target.end_time) / 2.0
        partial = grid.remove_object(target.object_id, after=midpoint)
        rest = grid.remove_object(target.object_id)
        assert partial + rest == len(segment_boxes(target, max_extent=15.0))
        for found in probe_grid(grid, trajectories, seed=7):
            assert target.object_id not in found


class TestGridRemove:
    def test_remove_object_drops_entries_and_count(self, trajectories):
        grid = GridIndex.covering(trajectories, cells=12, max_box_extent=15.0)
        target = trajectories[3]
        expected = len(segment_boxes(target, max_extent=15.0))
        before = len(grid)
        assert grid.remove_object(target.object_id) == expected
        assert len(grid) == before - expected
        for found in probe_grid(grid, trajectories, seed=2):
            assert target.object_id not in found

    def test_remove_then_reinsert_matches_bulk_grid(self, trajectories):
        grid = GridIndex.covering(trajectories, cells=12, max_box_extent=15.0)
        for trajectory in trajectories[:8]:
            grid.remove_object(trajectory.object_id)
            grid.insert_trajectory(trajectory)
        bulk = GridIndex.covering(trajectories, cells=12, max_box_extent=15.0)
        assert probe_grid(grid, trajectories, seed=3) == probe_grid(
            bulk, trajectories, seed=3
        )

    def test_remove_unknown_object_is_a_noop(self, trajectories):
        grid = GridIndex.covering(trajectories, cells=12)
        before = len(grid)
        assert grid.remove_object("ghost") == 0
        assert len(grid) == before

    def test_out_of_region_trajectory_can_be_removed(self, trajectories):
        grid = GridIndex.covering(trajectories[:5], cells=8)
        outside = trajectories[0].with_radius(trajectories[0].radius)
        far = type(outside)(
            "far",
            [(1e4, 1e4, outside.start_time), (1.1e4, 1.1e4, outside.end_time)],
            outside.radius,
        )
        grid.insert_trajectory(far)
        assert grid.remove_object("far") == len(segment_boxes(far))
        for found in probe_grid(grid, trajectories[:5], seed=4):
            assert "far" not in found
