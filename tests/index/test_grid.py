"""Tests for the uniform grid index."""

import pytest

from repro.index.boxes import Box3D, segment_boxes
from repro.index.grid import GridIndex
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

from ..conftest import straight_trajectory


class TestGridConstruction:
    def test_region_and_cell_validation(self):
        with pytest.raises(ValueError):
            GridIndex(0.0, 0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            GridIndex(0.0, 0.0, 10.0, 10.0, cells=0)

    def test_covering_factory_contains_all(self):
        trajectories = [
            straight_trajectory("a", (0, 0), (10, 10)),
            straight_trajectory("b", (20, 20), (30, 5)),
        ]
        index = GridIndex.covering(trajectories, cells=8)
        assert len(index) == 2  # one entry per (single-segment) trajectory

    def test_covering_requires_trajectories(self):
        with pytest.raises(ValueError):
            GridIndex.covering([], cells=8)


class TestGridQueries:
    def test_query_box_finds_overlapping_object(self):
        index = GridIndex(0.0, 0.0, 40.0, 40.0, cells=16)
        index.insert_trajectory(straight_trajectory("a", (5, 5), (10, 10)))
        found = index.query_box(Box3D(4.0, 4.0, 0.0, 6.0, 6.0, 60.0))
        assert found == {"a"}

    def test_query_box_excludes_temporally_disjoint(self):
        index = GridIndex(0.0, 0.0, 40.0, 40.0, cells=16)
        index.insert_trajectory(
            straight_trajectory("a", (5, 5), (10, 10), t_lo=0.0, t_hi=10.0)
        )
        found = index.query_box(Box3D(4.0, 4.0, 20.0, 6.0, 6.0, 30.0))
        assert found == set()

    def test_query_box_excludes_spatially_distant(self):
        index = GridIndex(0.0, 0.0, 40.0, 40.0, cells=16)
        index.insert_trajectory(straight_trajectory("a", (5, 5), (10, 10)))
        found = index.query_box(Box3D(30.0, 30.0, 0.0, 35.0, 35.0, 60.0))
        assert found == set()

    def test_matches_brute_force_on_random_workload(self):
        trajectories = generate_trajectories(
            RandomWaypointConfig(num_objects=60, seed=5)
        )
        index = GridIndex.covering(trajectories, cells=16)
        probe = Box3D(10.0, 10.0, 0.0, 20.0, 20.0, 60.0)
        expected = set()
        for trajectory in trajectories:
            for entry in segment_boxes(trajectory):
                if entry.box.intersects(probe):
                    expected.add(trajectory.object_id)
        assert index.query_box(probe) == expected

    def test_corridor_query_excludes_query_and_respects_distance(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        near = straight_trajectory("near", (0.0, 2.0), (30.0, 2.0))
        far = straight_trajectory("far", (0.0, 30.0), (30.0, 30.0))
        index = GridIndex.covering([query, near, far], cells=16)
        found = index.query_corridor(query, 5.0, 0.0, 60.0)
        assert "q" not in found
        assert "near" in found
        assert "far" not in found

    def test_corridor_negative_distance_rejected(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        index = GridIndex.covering([query], cells=4)
        with pytest.raises(ValueError):
            index.query_corridor(query, -1.0, 0.0, 60.0)
