"""Tests for (x, y, t) boxes and their derivation from trajectories."""

import pytest

from repro.index.boxes import Box3D, IndexEntry, segment_boxes, trajectory_box
from repro.trajectories.trajectory import Trajectory

from ..conftest import straight_trajectory


class TestBox3D:
    def test_malformed_box_rejected(self):
        with pytest.raises(ValueError):
            Box3D(1.0, 0.0, 0.0, 0.0, 1.0, 1.0)

    def test_volume_and_center(self):
        box = Box3D(0.0, 0.0, 0.0, 2.0, 3.0, 4.0)
        assert box.volume == pytest.approx(24.0)
        assert box.center == (1.0, 1.5, 2.0)

    def test_intersects(self):
        a = Box3D(0, 0, 0, 2, 2, 2)
        b = Box3D(1, 1, 1, 3, 3, 3)
        c = Box3D(5, 5, 5, 6, 6, 6)
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_touching_boxes_intersect(self):
        a = Box3D(0, 0, 0, 1, 1, 1)
        b = Box3D(1, 0, 0, 2, 1, 1)
        assert a.intersects(b)

    def test_contains(self):
        outer = Box3D(0, 0, 0, 10, 10, 10)
        inner = Box3D(1, 1, 1, 2, 2, 2)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_union(self):
        a = Box3D(0, 0, 0, 1, 1, 1)
        b = Box3D(2, -1, 0.5, 3, 0, 4)
        union = a.union(b)
        assert union == Box3D(0, -1, 0, 3, 1, 4)

    def test_expanded(self):
        box = Box3D(0, 0, 0, 1, 1, 1).expanded(0.5, 0.25)
        assert box == Box3D(-0.5, -0.5, -0.25, 1.5, 1.5, 1.25)
        with pytest.raises(ValueError):
            Box3D(0, 0, 0, 1, 1, 1).expanded(-1.0)


class TestSegmentBoxes:
    def test_one_entry_per_segment(self):
        trajectory = Trajectory("a", [(0, 0, 0.0), (5, 0, 5.0), (5, 5, 10.0)])
        entries = segment_boxes(trajectory, spatial_margin=0.0)
        assert len(entries) == 2
        assert all(isinstance(entry, IndexEntry) for entry in entries)
        assert entries[0].box.t_min == 0.0 and entries[0].box.t_max == 5.0

    def test_uncertain_trajectory_uses_radius_as_default_margin(self):
        trajectory = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0), radius=0.5)
        entries = segment_boxes(trajectory)
        box = entries[0].box
        assert box.x_min == pytest.approx(-0.5)
        assert box.y_max == pytest.approx(0.5)

    def test_explicit_margin_overrides_default(self):
        trajectory = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0), radius=0.5)
        entries = segment_boxes(trajectory, spatial_margin=2.0)
        assert entries[0].box.x_min == pytest.approx(-2.0)

    def test_trajectory_box_covers_all_segments(self):
        trajectory = Trajectory("a", [(0, 0, 0.0), (5, 0, 5.0), (5, 5, 10.0)])
        box = trajectory_box(trajectory, spatial_margin=0.0)
        assert box.contains(Box3D(0, 0, 0, 5, 5, 10))
