"""Tests for the STR-packed R-tree."""

import pytest

from repro.index.boxes import Box3D, IndexEntry, segment_boxes
from repro.index.grid import GridIndex
from repro.index.rtree import STRRTree
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

from ..conftest import straight_trajectory


class TestRTreeConstruction:
    def test_empty_tree(self):
        tree = STRRTree([])
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.query_box(Box3D(0, 0, 0, 1, 1, 1)) == set()

    def test_leaf_capacity_validation(self):
        with pytest.raises(ValueError):
            STRRTree([], leaf_capacity=1)

    def test_height_grows_with_size(self):
        def entry(i):
            return IndexEntry(Box3D(i, i, 0, i + 1, i + 1, 1), i)

        small = STRRTree([entry(i) for i in range(8)], leaf_capacity=4)
        large = STRRTree([entry(i) for i in range(200)], leaf_capacity=4)
        assert small.height >= 1
        assert large.height > small.height

    def test_from_trajectories_counts_segments(self):
        trajectories = generate_trajectories(
            RandomWaypointConfig(num_objects=20, segments_per_trajectory=3, seed=5)
        )
        tree = STRRTree.from_trajectories(trajectories)
        assert len(tree) == 20 * 3


class TestRTreeQueries:
    def test_query_matches_brute_force(self):
        trajectories = generate_trajectories(
            RandomWaypointConfig(num_objects=80, segments_per_trajectory=2, seed=9)
        )
        tree = STRRTree.from_trajectories(trajectories, leaf_capacity=8)
        probes = [
            Box3D(0.0, 0.0, 0.0, 10.0, 10.0, 30.0),
            Box3D(15.0, 15.0, 10.0, 25.0, 25.0, 50.0),
            Box3D(35.0, 35.0, 0.0, 40.0, 40.0, 60.0),
        ]
        for probe in probes:
            expected = set()
            for trajectory in trajectories:
                for entry in segment_boxes(trajectory):
                    if entry.box.intersects(probe):
                        expected.add(trajectory.object_id)
            assert tree.query_box(probe) == expected

    def test_query_matches_grid_index(self):
        trajectories = generate_trajectories(
            RandomWaypointConfig(num_objects=50, seed=11)
        )
        tree = STRRTree.from_trajectories(trajectories)
        grid = GridIndex.covering(trajectories, cells=20)
        probe = Box3D(5.0, 5.0, 0.0, 25.0, 25.0, 60.0)
        assert tree.query_box(probe) == grid.query_box(probe)

    def test_corridor_query(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        near = straight_trajectory("near", (0.0, 2.0), (30.0, 2.0))
        far = straight_trajectory("far", (0.0, 30.0), (30.0, 30.0))
        tree = STRRTree.from_trajectories([query, near, far])
        found = tree.query_corridor(query, 5.0, 0.0, 60.0)
        assert found == {"near"}

    def test_corridor_negative_distance_rejected(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        tree = STRRTree.from_trajectories([query])
        with pytest.raises(ValueError):
            tree.query_corridor(query, -0.5, 0.0, 60.0)
