"""ShardedEngine mechanics: routing, refresh, membership, lifecycle."""

import pytest

from repro.engine import QueryEngine, answer_of
from repro.parallel import ShardedEngine, build_plan
from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory
from repro.uncertainty.uniform import UniformDiskPDF
from repro.workloads.scenarios import sharded_fleet


@pytest.fixture(scope="module")
def fleet():
    return sharded_fleet(num_districts=4, vehicles_per_district=8)


def fresh_engine(mod, **kwargs):
    kwargs.setdefault("backend", "serial")
    return ShardedEngine(mod, 4, **kwargs)


def test_every_query_routed_to_its_owning_shard(fleet):
    mod, query_ids = fleet
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        batch = engine.answer_batch(query_ids, lo, hi)
        for item in batch:
            assert item.shard == engine.owner_of(item.query_id)


def test_duplicate_query_ids_preserved_in_order(fleet):
    mod, query_ids = fleet
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        doubled = [query_ids[0], query_ids[1], query_ids[0]]
        batch = engine.answer_batch(doubled, lo, hi)
        assert [item.query_id for item in batch] == doubled
        assert batch.results[0].answer == batch.results[2].answer


def test_unknown_query_and_bad_arguments(fleet):
    mod, query_ids = fleet
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        with pytest.raises(KeyError):
            engine.answer_batch(["nope"], lo, hi)
        with pytest.raises(ValueError):
            engine.answer_batch(query_ids, hi, lo)
        with pytest.raises(ValueError):
            engine.answer_batch(query_ids, lo, hi, variant="never")
    with pytest.raises(ValueError):
        ShardedEngine(mod, 4, backend="gpu")
    with pytest.raises(ValueError):
        ShardedEngine(mod, 4, index="btree")


def test_refresh_routes_changes_to_affected_shards_only(fleet):
    mod, query_ids = fleet
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        engine.answer_batch(query_ids, lo, hi)
        assert engine.refresh() == []  # no store change, no shard touched

        moved_id = "d0-veh-1"
        owner = engine.owner_of(moved_id)
        old = mod.get(moved_id)
        nudged = [
            TrajectorySample(s.x + 0.25, s.y, s.t) for s in old.samples
        ]
        mod.replace_trajectory(
            UncertainTrajectory(moved_id, nudged, old.radius, old.pdf)
        )
        changed = engine.refresh()
        # The owning shard always sees its object's change; a small nudge
        # must not ripple through every shard in a district world.
        assert owner in changed
        assert len(changed) < engine.num_shards


def test_membership_follows_additions_and_removals(fleet):
    mod, query_ids = sharded_fleet(num_districts=4, vehicles_per_district=8)
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        engine.answer_batch(query_ids, lo, hi)
        before = sum(info.members for info in engine.shard_info())

        newcomer = UncertainTrajectory(
            "newcomer",
            [TrajectorySample(1.0, 1.0, lo), TrajectorySample(2.0, 2.0, hi)],
            0.2,
            UniformDiskPDF(0.2),
        )
        mod.add(newcomer)
        engine.refresh()
        assert "newcomer" in mod
        assert engine.owner_of("newcomer") in range(engine.num_shards)
        assert sum(info.members for info in engine.shard_info()) > before

        # The newcomer is queryable and exact.
        single = QueryEngine(mod)
        expected = answer_of(single.prepare("newcomer", lo, hi).context, "sometime")
        assert engine.answer("newcomer", lo, hi) == expected

        mod.remove("newcomer")
        engine.refresh()
        with pytest.raises(KeyError):
            engine.owner_of("newcomer")


def test_repartition_rebuilds_ownership(fleet):
    mod, query_ids = fleet
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        first = engine.answer_batch(query_ids, lo, hi).answers
        plan = engine.repartition(num_shards=2, method="grid")
        assert plan.num_shards == 2
        assert engine.num_shards == 2
        assert engine.answer_batch(query_ids, lo, hi).answers == first


def test_prebuilt_plan_is_honored(fleet):
    mod, query_ids = fleet
    plan = build_plan(mod, 3, method="grid", halo=5.0)
    with ShardedEngine(mod, backend="serial", plan=plan) as engine:
        assert engine.num_shards == 3
        assert engine.halo == 5.0
        lo, hi = mod.common_time_span()
        single = QueryEngine(mod)
        expected = {
            q: answer_of(single.prepare(q, lo, hi).context, "sometime")
            for q in query_ids
        }
        assert engine.answer_batch(query_ids, lo, hi).answers == expected


def test_shard_info_accounts_everyone(fleet):
    mod, _ = fleet
    with fresh_engine(mod) as engine:
        infos = engine.shard_info()
        assert sum(info.owned for info in infos) == len(mod)
        for info in infos:
            assert info.members <= len(mod)
            assert info.complete == (info.members == len(mod))


def test_telemetry_counts_batch(fleet):
    mod, query_ids = fleet
    with fresh_engine(mod) as engine:
        lo, hi = mod.common_time_span()
        batch = engine.answer_batch(query_ids, lo, hi)
        assert len(batch) == len(query_ids)
        assert sum(t.queries for t in batch.shard_telemetry) == len(query_ids)
        assert batch.total_seconds > 0
        assert 0.0 <= batch.fallback_ratio <= 1.0


def _shared_task_fixture(mod, query_ids):
    """A SharedColumnarStore plus a ShardTask kwargs template over it."""
    from repro.parallel.plan import expanded_bounds
    from repro.parallel.worker import QuerySpec
    from repro.trajectories.shared import SharedColumnarStore

    lo, hi = mod.common_time_span()
    bounds = [expanded_bounds(t) for t in mod]
    coverage = (
        min(b[0] for b in bounds), min(b[1] for b in bounds),
        max(b[2] for b in bounds), max(b[3] for b in bounds),
    )
    spec = QuerySpec(query_ids[0], lo, hi, mod.default_band_width(query_ids[0]))
    shared = SharedColumnarStore(mod)
    common = dict(
        token=("test-descriptor-protocol", 0),
        fingerprint=7,
        store=shared.descriptor(),
        member_ids=tuple(t.object_id for t in mod),
        index_kind="rtree",
        leaf_capacity=16,
        grid_cells=32,
        cache_size=64,
        queries=(spec,),
        coverage=coverage,
        complete=True,
    )
    return shared, common


def test_worker_descriptor_protocol_rebuilds_then_caches(fleet):
    """A task always succeeds: cold rebuild once, cached afterwards."""
    from repro.parallel.worker import ShardTask, run_shard_task

    mod, query_ids = fleet
    shared, common = _shared_task_fixture(mod, query_ids)
    with shared:
        # Cold cache: the worker attaches the shared export and rebuilds.
        first = run_shard_task(ShardTask(**common))
        assert first.rebuilt
        assert first.revision == shared.revision
        assert not first.outcomes[0].escaped
        # Same token+fingerprint: served from the cached shard engine.
        probe = run_shard_task(ShardTask(**common))
        assert not probe.rebuilt
        assert probe.outcomes[0].answer == first.outcomes[0].answer
        # A bumped fingerprint forces one rebuild — still from shared
        # memory, never a trajectory payload.
        stale = run_shard_task(ShardTask(**dict(common, fingerprint=8)))
        assert stale.rebuilt
        assert stale.outcomes[0].answer == first.outcomes[0].answer


def test_worker_cache_scales_to_shard_count(fleet):
    """More shards than the old flat limit never evict each other."""
    from repro.parallel.worker import (
        _ENGINE_CACHE, _ENGINE_CACHE_LIMIT, ShardTask, run_shard_task,
    )

    mod, query_ids = fleet
    shared, common = _shared_task_fixture(mod, query_ids)
    shards = _ENGINE_CACHE_LIMIT + 5
    with shared:
        for sweep in range(2):
            for shard in range(shards):
                task = ShardTask(**dict(
                    common,
                    token=("test-cache-scaling", shard),
                    cache_slots=shards,
                ))
                result = run_shard_task(task)
                # Second sweep must be all cache hits: with cache_slots
                # scaled to the engine's shard count, sweeping 21 shards
                # through one worker never evicts a sibling (the old flat
                # 16-slot cache thrashed here and rebuilt every task).
                assert result.rebuilt == (sweep == 0)
        assert len(_ENGINE_CACHE[("test-cache-scaling",)]) == shards


def test_process_backend_warm_batches_after_mutation(fleet):
    mod, query_ids = sharded_fleet(num_districts=4, vehicles_per_district=8)
    lo, hi = mod.common_time_span()
    with ShardedEngine(mod, 4, backend="process") as engine:
        first = engine.answer_batch(query_ids, lo, hi).answers
        assert engine.answer_batch(query_ids, lo, hi).answers == first
        moved = mod.get(query_ids[0])
        mod.replace_trajectory(
            UncertainTrajectory(
                moved.object_id,
                [TrajectorySample(s.x, s.y + 0.4, s.t) for s in moved.samples],
                moved.radius,
                moved.pdf,
            )
        )
        single = QueryEngine(mod)
        expected = {
            q: answer_of(single.prepare(q, lo, hi).context, "sometime")
            for q in query_ids
        }
        assert engine.answer_batch(query_ids, lo, hi).answers == expected


def test_process_backend_steady_state_never_resends(fleet):
    """Unchanged shards cost zero rebuilds (and zero payloads) per batch."""
    mod, query_ids = sharded_fleet(num_districts=4, vehicles_per_district=8)
    lo, hi = mod.common_time_span()
    # One worker makes the task->worker assignment deterministic, so every
    # shard's engine lands in that worker's cache on the cold batch.
    with ShardedEngine(mod, 4, backend="process", max_workers=1) as engine:
        cold = engine.answer_batch(query_ids, lo, hi)
        assert cold.worker_rebuilds == engine.num_shards
        # Identical batch: served entirely from the parent answer cache.
        warm = engine.answer_batch(query_ids, lo, hi)
        assert warm.answers == cold.answers
        assert warm.cache_hits == len(query_ids)
        assert warm.worker_rebuilds == 0
        # Same queries with the cache dropped: workers serve from their
        # cached shard engines — still zero rebuilds, zero resends.
        engine.clear_answer_cache()
        uncached = engine.answer_batch(query_ids, lo, hi)
        assert uncached.answers == cold.answers
        assert uncached.cache_hits == 0
        assert uncached.worker_rebuilds == 0
        assert engine.worker_rebuilds == engine.num_shards
        assert engine.shared_segments()


def test_close_is_idempotent(fleet):
    mod, query_ids = fleet
    engine = fresh_engine(mod, backend="process")
    lo, hi = mod.common_time_span()
    engine.answer_batch(query_ids[:2], lo, hi)
    engine.close()
    engine.close()
