"""Property: sharded answers are invariant to shard count and halo width.

For any random fleet, window, and UQ3x variant, the :class:`ShardedEngine`
must return the same answers as the monolithic :class:`QueryEngine`
regardless of how many shards the store is cut into and how wide the
boundary-replication halo is — the shard plan is a performance knob, never a
correctness knob.  Comparisons go through the streaming layer's
representation-noise-tolerant :func:`answers_equal`.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import QueryEngine, answer_of
from repro.parallel import ShardedEngine
from repro.streaming import answers_equal
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory
from repro.uncertainty.uniform import UniformDiskPDF

T_LO, T_HI = 0.0, 10.0
SAMPLE_TIMES = (0.0, 4.0, 10.0)

coordinate = st.floats(
    min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False
)


@st.composite
def fleets(draw, min_size=4, max_size=9):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    radius = draw(st.sampled_from([0.1, 0.3]))
    pdf = UniformDiskPDF(radius)
    trajectories = []
    for index in range(count):
        samples = [
            TrajectorySample(draw(coordinate), draw(coordinate), t)
            for t in SAMPLE_TIMES
        ]
        trajectories.append(
            UncertainTrajectory(f"o{index}", samples, radius, pdf)
        )
    return MovingObjectsDatabase(trajectories)


@settings(max_examples=12, deadline=None)
@given(
    mod=fleets(),
    num_shards=st.integers(min_value=1, max_value=5),
    halo=st.sampled_from([0.0, 3.0, "auto"]),
    variant=st.sampled_from(["sometime", "always"]),
)
def test_answers_invariant_to_shard_count_and_halo(mod, num_shards, halo, variant):
    query_id = "o0"
    single = QueryEngine(mod)
    expected = answer_of(
        single.prepare(query_id, T_LO, T_HI).context, variant
    )
    with ShardedEngine(
        mod, num_shards, backend="serial", halo=halo
    ) as engine:
        answer = engine.answer_batch(
            [query_id], T_LO, T_HI, variant=variant
        ).results[0].answer
    assert answers_equal(answer, expected)


@settings(max_examples=6, deadline=None)
@given(mod=fleets(min_size=5, max_size=8), method=st.sampled_from(["str", "grid", "rtree"]))
def test_answers_invariant_to_partition_method(mod, method):
    query_ids = ["o0", "o1"]
    single = QueryEngine(mod)
    expected = {
        q: answer_of(single.prepare(q, T_LO, T_HI).context, "sometime")
        for q in query_ids
    }
    with ShardedEngine(mod, 3, backend="serial", method=method) as engine:
        answers = engine.answer_batch(query_ids, T_LO, T_HI).answers
    assert all(answers_equal(answers[q], expected[q]) for q in query_ids)
