"""Partition extraction: balanced, disjoint, exhaustive id groups."""

import pytest

from repro.index.partition import (
    grid_partition,
    partition_from_grid,
    partition_from_rtree,
    str_order,
    str_partition,
)
from repro.parallel.plan import (
    ShardPlan,
    build_plan,
    expanded_bounds,
    resolve_halo,
)
from repro.workloads.scenarios import multi_query_fleet, sharded_fleet


@pytest.fixture(scope="module")
def fleet_bounds():
    mod, _ = multi_query_fleet(num_vehicles=40, num_queries=4)
    return mod, {t.object_id: expanded_bounds(t) for t in mod}


def assert_valid_partition(groups, all_ids, num_groups):
    """Groups must be disjoint, exhaustive, non-empty, and balanced."""
    flattened = [object_id for group in groups for object_id in group]
    assert sorted(flattened, key=str) == sorted(all_ids, key=str)
    assert len(flattened) == len(set(flattened))
    assert len(groups) == min(num_groups, len(all_ids))
    sizes = [len(group) for group in groups]
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1


@pytest.mark.parametrize("num_groups", [1, 3, 4, 7])
def test_str_partition_is_valid(fleet_bounds, num_groups):
    mod, bounds = fleet_bounds
    groups = str_partition(bounds, num_groups)
    assert_valid_partition(groups, mod.object_ids, num_groups)


@pytest.mark.parametrize("num_groups", [1, 4, 9])
def test_grid_partition_is_valid(fleet_bounds, num_groups):
    mod, bounds = fleet_bounds
    groups = grid_partition(bounds, num_groups)
    assert_valid_partition(groups, mod.object_ids, num_groups)


def test_partition_from_rtree_is_valid(fleet_bounds):
    mod, _ = fleet_bounds
    tree = mod.build_index("rtree")
    groups = partition_from_rtree(tree, 4)
    assert_valid_partition(groups, mod.object_ids, 4)


def test_partition_from_grid_is_valid(fleet_bounds):
    mod, _ = fleet_bounds
    grid = mod.build_index("grid")
    groups = partition_from_grid(grid, 4)
    assert_valid_partition(groups, mod.object_ids, 4)


def test_str_order_is_deterministic(fleet_bounds):
    _, bounds = fleet_bounds
    assert str_order(bounds, 4) == str_order(dict(reversed(bounds.items())), 4)


def test_more_groups_than_ids_degrades_to_singletons():
    bounds = {f"o{i}": (float(i), 0.0, float(i) + 1.0, 1.0) for i in range(3)}
    groups = str_partition(bounds, 8)
    assert len(groups) == 3
    assert all(len(group) == 1 for group in groups)


def test_str_partition_groups_are_spatially_coherent():
    """Two well-separated clusters must not be interleaved across groups."""
    bounds = {}
    for i in range(8):
        bounds[f"west-{i}"] = (0.0, float(i), 1.0, float(i) + 1.0)
        bounds[f"east-{i}"] = (100.0, float(i), 101.0, float(i) + 1.0)
    groups = str_partition(bounds, 2)
    sides = [{str(object_id).split("-")[0] for object_id in g} for g in groups]
    assert sides == [{"west"}, {"east"}] or sides == [{"east"}, {"west"}]


def test_build_plan_methods_cover_the_store():
    mod, _ = sharded_fleet(num_districts=4, vehicles_per_district=6)
    for method in ("str", "grid", "rtree"):
        plan = build_plan(mod, 4, method=method)
        assert isinstance(plan, ShardPlan)
        assert_valid_partition(
            [list(group) for group in plan.groups], mod.object_ids, 4
        )
        assert plan.halo > 0
        owner = plan.owner_of()
        assert set(owner) == set(mod.object_ids)


def test_build_plan_rejects_bad_inputs():
    mod, _ = multi_query_fleet(num_vehicles=10, num_queries=2)
    with pytest.raises(ValueError):
        build_plan(mod, 0)
    with pytest.raises(ValueError):
        build_plan(mod, 4, method="voronoi")
    with pytest.raises(ValueError):
        build_plan(mod, 4, halo=-1.0)
    from repro.trajectories.mod import MovingObjectsDatabase

    with pytest.raises(ValueError):
        build_plan(MovingObjectsDatabase(), 4)


def test_resolve_halo_auto_scales_with_shard_count():
    rects = [(0.0, 0.0, 10.0, 10.0)]
    assert resolve_halo("auto", rects, 1) == pytest.approx(5.0)
    assert resolve_halo("auto", rects, 4) == pytest.approx(2.5)
    assert resolve_halo(1.5, rects, 4) == 1.5
