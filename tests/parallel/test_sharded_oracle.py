"""Oracle: sharded answers must equal the single-process engine's exactly.

The acceptance bar of the parallel layer: a :class:`ShardedEngine` with at
least 4 shards on the process backend returns answers identical to a
monolithic :class:`QueryEngine` on the ``multi_query_fleet`` and
``streaming_fleet`` scenarios — including while the streaming scenario's
update batches mutate the store underneath both engines.
"""

import pytest

from repro.engine import QueryEngine, answer_of
from repro.parallel import ShardedEngine
from repro.streaming import ContinuousMonitor
from repro.workloads.scenarios import (
    multi_query_fleet,
    sharded_fleet,
    streaming_fleet,
)


def single_engine_answers(mod, query_ids, lo, hi, variant="sometime", fraction=0.0):
    engine = QueryEngine(mod)
    return {
        query_id: answer_of(
            engine.prepare(query_id, lo, hi).context, variant, fraction
        )
        for query_id in query_ids
    }


@pytest.mark.parametrize("variant,fraction", [
    ("sometime", 0.0),
    ("always", 0.0),
    ("fraction", 0.3),
])
def test_process_backend_matches_single_engine_on_multi_query_fleet(
    variant, fraction
):
    mod, query_ids = multi_query_fleet(num_vehicles=40, num_queries=6)
    lo, hi = mod.common_time_span()
    expected = single_engine_answers(mod, query_ids, lo, hi, variant, fraction)
    with ShardedEngine(mod, 4, backend="process") as engine:
        batch = engine.answer_batch(
            query_ids, lo, hi, variant=variant, fraction=fraction
        )
    assert engine.num_shards == 4
    assert batch.answers == expected


def test_process_backend_matches_single_engine_on_streaming_fleet():
    scenario = streaming_fleet(num_vehicles=24, num_queries=3, num_batches=2)
    monitor = ContinuousMonitor(scenario.mod)
    for object_id in scenario.mod.object_ids:
        monitor.track(
            object_id,
            max_speed=scenario.max_speed,
            minimum_radius=scenario.uncertainty_radius,
        )
    with ShardedEngine(scenario.mod, 4, backend="process") as engine:
        for batch in scenario.batches:
            for object_id, reports in batch.items():
                monitor.ingest(object_id, reports)
            monitor.apply()
            lo, hi = scenario.mod.common_time_span()
            expected = single_engine_answers(
                scenario.mod, scenario.query_ids, lo, hi
            )
            result = engine.answer_batch(scenario.query_ids, lo, hi)
            assert result.answers == expected


def test_all_backends_agree_on_sharded_fleet():
    mod, query_ids = sharded_fleet(num_districts=4, vehicles_per_district=8)
    lo, hi = mod.common_time_span()
    expected = single_engine_answers(mod, query_ids, lo, hi)
    for backend in ("serial", "thread", "process"):
        with ShardedEngine(mod, 4, backend=backend) as engine:
            batch = engine.answer_batch(query_ids, lo, hi)
            assert batch.answers == expected, backend


def test_tiny_halo_still_exact_via_fallback():
    """A uselessly small halo forces escapes, never wrong answers."""
    mod, query_ids = sharded_fleet(num_districts=4, vehicles_per_district=8)
    lo, hi = mod.common_time_span()
    expected = single_engine_answers(mod, query_ids, lo, hi)
    with ShardedEngine(mod, 4, backend="serial", halo=0.01) as engine:
        batch = engine.answer_batch(query_ids, lo, hi)
        assert batch.answers == expected
        # With no replication margin essentially every query must escape.
        assert engine.fallback_evaluations > 0


def test_global_band_width_used_on_heterogeneous_radii():
    """Shards must use the full store's 4r default, not a shard-local one.

    Two spatially distant clusters with different pdf supports: the default
    band width of a query in the small-radius cluster is dominated by the
    *other* cluster's larger support, which a shard-local default would
    miss.  Equality with the single engine proves the parent resolved it.
    """
    from repro.trajectories.mod import MovingObjectsDatabase
    from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory
    from repro.uncertainty.uniform import UniformDiskPDF

    trajectories = []
    for i in range(6):
        trajectories.append(
            UncertainTrajectory(
                f"small-{i}",
                [TrajectorySample(0.0, i * 1.0, 0.0),
                 TrajectorySample(5.0, i * 1.0, 10.0)],
                0.1,
                UniformDiskPDF(0.1),
            )
        )
    for i in range(6):
        trajectories.append(
            UncertainTrajectory(
                f"big-{i}",
                [TrajectorySample(100.0, i * 1.0, 0.0),
                 TrajectorySample(105.0, i * 1.0, 10.0)],
                2.0,
                UniformDiskPDF(2.0),
            )
        )
    mod = MovingObjectsDatabase(trajectories)
    query_ids = ["small-0", "big-0"]
    expected = single_engine_answers(mod, query_ids, 0.0, 10.0)
    with ShardedEngine(mod, 2, backend="serial") as engine:
        batch = engine.answer_batch(query_ids, 0.0, 10.0)
        assert batch.answers == expected
