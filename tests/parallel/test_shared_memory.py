"""Shared-memory export lifecycle: ownership, patches, and exactness.

The :class:`~repro.trajectories.shared.SharedColumnarStore` owns named
``/dev/shm`` segments on behalf of the process-backed sharded engine; these
tests pin the contract around that ownership — segments are unlinked on
``close()`` *and* on garbage collection, close is idempotent, patch syncs
advance the revision workers handshake on, long patch chains rebase — and
the correctness property that makes zero-copy serving trustworthy: any
upsert/remove/replace sequence keeps answers computed over the shared
segments byte-identical to the single engine's.
"""

import gc
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import QueryEngine
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.shared import (
    AttachedPack,
    SharedColumnarStore,
    attach_pack,
)
from repro.trajectories.trajectory import TrajectorySample, UncertainTrajectory
from repro.uncertainty.uniform import UniformDiskPDF
from repro.workloads.scenarios import sharded_fleet

import numpy as np


def segment_exists(name: str) -> bool:
    """Whether a POSIX shared-memory segment of this name still exists."""
    return os.path.exists(os.path.join("/dev/shm", name))


def nudged(trajectory, dx, dy=0.0):
    return UncertainTrajectory(
        trajectory.object_id,
        [
            TrajectorySample(s.x + dx, s.y + dy, s.t)
            for s in trajectory.samples
        ],
        trajectory.radius,
        trajectory.pdf,
    )


@pytest.fixture()
def fleet():
    return sharded_fleet(num_districts=2, vehicles_per_district=6)


def test_attached_columns_match_the_parent_store(fleet):
    mod, _ = fleet
    with SharedColumnarStore(mod) as shared:
        pack = AttachedPack(shared.descriptor())
        reference = mod.columnar()
        assert set(pack.ids) == set(mod.object_ids)
        for object_id in mod.object_ids:
            for ours, theirs in zip(
                pack.columns(object_id), reference.columns(object_id)
            ):
                assert np.array_equal(ours, theirs)
            assert pack.radius_of(object_id) == reference.radius_of(object_id)
        pack.close()


def test_patch_sync_advances_revision_without_rebasing(fleet):
    mod, _ = fleet
    with SharedColumnarStore(mod) as shared:
        base_revision = shared.revision
        assert len(shared.segment_names()) == 1
        assert shared.sync() is False  # unchanged store: no-op

        moved = mod.object_ids[0]
        mod.replace_trajectory(nudged(mod.get(moved), 0.5))
        assert shared.sync() is True
        assert shared.revision == mod.revision > base_revision
        assert len(shared.segment_names()) == 2  # base + one patch

        pack = AttachedPack(shared.descriptor())
        assert pack.revision == mod.revision
        ts, xs, ys = pack.columns(moved)
        rts, rxs, rys = mod.columnar().columns(moved)
        assert np.array_equal(xs, rxs) and np.array_equal(ys, rys)
        assert np.array_equal(ts, rts)
        pack.close()


def test_removals_ride_patches_and_long_chains_rebase(fleet):
    mod, _ = fleet
    with SharedColumnarStore(mod, max_patch_segments=3) as shared:
        victim = mod.object_ids[-1]
        mod.remove(victim)
        shared.sync()
        pack = AttachedPack(shared.descriptor())
        assert victim not in pack.ids
        pack.close()

        survivor = mod.object_ids[0]
        lengths = []
        for step in range(1, 6):
            mod.replace_trajectory(nudged(mod.get(survivor), 0.1 * step))
            shared.sync()
            lengths.append(len(shared.segment_names()))
        # The chain grows by one patch per sync until it would exceed
        # max_patch_segments, then rebases into one fresh base edition.
        assert max(lengths) == 4
        assert 1 in lengths
        pack = AttachedPack(shared.descriptor())
        assert np.array_equal(
            pack.columns(survivor)[1], mod.columnar().columns(survivor)[1]
        )
        pack.close()


def test_close_unlinks_segments_and_is_idempotent(fleet):
    mod, _ = fleet
    shared = SharedColumnarStore(mod)
    descriptor = shared.descriptor()
    names = shared.segment_names()
    assert all(segment_exists(name) for name in names)
    shared.close()
    shared.close()  # double close must be a no-op
    assert shared.segment_names() == ()
    assert not any(segment_exists(name) for name in names)
    with pytest.raises(FileNotFoundError):
        AttachedPack(descriptor)
    with pytest.raises(ValueError):
        shared.descriptor()
    with pytest.raises(ValueError):
        shared.sync()


def test_garbage_collection_unlinks_segments(fleet):
    mod, _ = fleet
    shared = SharedColumnarStore(mod)
    names = shared.segment_names()
    assert all(segment_exists(name) for name in names)
    del shared
    gc.collect()
    assert not any(segment_exists(name) for name in names)


def test_worker_reattaches_after_parent_repack(fleet):
    """A bumped fingerprint makes the worker serve the new revision."""
    from repro.parallel.plan import expanded_bounds
    from repro.parallel.worker import QuerySpec, ShardTask, run_shard_task

    mod, query_ids = fleet
    lo, hi = mod.common_time_span()
    bounds = [expanded_bounds(t) for t in mod]
    coverage = (
        min(b[0] for b in bounds), min(b[1] for b in bounds),
        max(b[2] for b in bounds), max(b[3] for b in bounds),
    )
    query_id = query_ids[0]
    with SharedColumnarStore(mod) as shared:
        def task(fingerprint):
            return ShardTask(
                token=("test-reattach", 0),
                fingerprint=fingerprint,
                store=shared.descriptor(),
                member_ids=tuple(t.object_id for t in mod),
                index_kind="rtree",
                leaf_capacity=16,
                grid_cells=32,
                cache_size=64,
                queries=(QuerySpec(
                    query_id, lo, hi, mod.default_band_width(query_id)
                ),),
                coverage=coverage,
                complete=True,
            )

        first = run_shard_task(task(1))
        assert first.revision == shared.revision

        mod.replace_trajectory(nudged(mod.get(query_id), 0.3))
        shared.sync()
        second = run_shard_task(task(2))
        assert second.rebuilt
        assert second.revision == shared.revision > first.revision
        expected = QueryEngine(mod).answer(query_id, lo, hi)
        assert second.outcomes[0].answer == expected


coordinate = st.floats(
    min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False
)
operations = st.lists(
    st.tuples(
        st.sampled_from(["replace", "upsert", "remove"]),
        st.integers(min_value=0, max_value=7),
        coordinate,
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=10, deadline=None)
@given(ops=operations)
def test_any_mutation_sequence_keeps_shared_answers_exact(ops):
    """Upsert/remove/replace sequences never desync the shared export."""
    pdf = UniformDiskPDF(0.2)
    mod = MovingObjectsDatabase(
        UncertainTrajectory(
            f"o{index}",
            [
                TrajectorySample(3.0 * index, 2.0 * index + t, t)
                for t in (0.0, 5.0, 10.0)
            ],
            0.2,
            pdf,
        )
        for index in range(4)
    )
    with SharedColumnarStore(mod, max_patch_segments=2) as shared:
        for kind, which, coord in ops:
            object_id = f"o{which}"
            if kind == "remove":
                # Keep the store non-empty and o0 queryable throughout.
                if object_id != "o0" and object_id in mod:
                    mod.remove(object_id)
            elif kind == "replace" and object_id in mod:
                mod.replace_trajectory(nudged(mod.get(object_id), coord, 0.5))
            else:
                mod.upsert(UncertainTrajectory(
                    object_id,
                    [
                        TrajectorySample(coord, coord + t, t)
                        for t in (0.0, 5.0, 10.0)
                    ],
                    0.2,
                    pdf,
                ))
            shared.sync()
            pack = AttachedPack(shared.descriptor())
            rebuilt = pack.member_database(
                tuple(t.object_id for t in mod)
            )
            single = QueryEngine(mod)
            mirror = QueryEngine(rebuilt)
            assert single.answer("o0", 0.0, 10.0) == mirror.answer(
                "o0", 0.0, 10.0
            )
            pack.close()


def test_attach_pack_memoizes_per_chain(fleet):
    mod, _ = fleet
    with SharedColumnarStore(mod) as shared:
        first = attach_pack(shared.descriptor())
        assert attach_pack(shared.descriptor()) is first
        mod.replace_trajectory(nudged(mod.get(mod.object_ids[0]), 0.2))
        shared.sync()
        assert attach_pack(shared.descriptor()) is not first


def test_full_run_leaves_no_tracker_noise_or_segments(tmp_path):
    """An end-to-end process-backend run exits with silent, clean stderr.

    Runs in a subprocess so the assertion covers interpreter shutdown: no
    resource_tracker KeyErrors or leak warnings, no ``Exception ignored``
    from ``SharedMemory.__del__``, and nothing left under ``/dev/shm``.
    The script lives in a real file because the spawn start method has to
    re-import the main module in every worker.
    """
    script = tmp_path / "shm_run.py"
    script.write_text(
        """
from repro.parallel import ShardedEngine
from repro.workloads.scenarios import sharded_fleet

def main():
    mod, query_ids = sharded_fleet(num_districts=2, vehicles_per_district=6)
    lo, hi = mod.common_time_span()
    with ShardedEngine(mod, 2, backend="process", max_workers=2) as engine:
        engine.answer_batch(query_ids, lo, hi)
        names = engine.shared_segments()
    print("SEGMENTS:" + ",".join(names))

if __name__ == "__main__":
    main()
"""
    )
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
        + environment.get("PYTHONPATH", "").split(os.pathsep)
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=environment,
    )
    assert completed.returncode == 0, completed.stderr
    assert "resource_tracker" not in completed.stderr, completed.stderr
    assert "Exception ignored" not in completed.stderr, completed.stderr
    names = completed.stdout.split("SEGMENTS:", 1)[1].strip().split(",")
    assert names and names[0]
    assert not any(segment_exists(name) for name in names if name)
