"""Backend selection and exactness of the warm engine pool."""

import pytest

from repro.engine import QueryEngine
from repro.service import EnginePool
from repro.workloads.scenarios import multi_query_fleet


@pytest.fixture(scope="module")
def fleet():
    return multi_query_fleet(num_vehicles=24, num_queries=4)


class TestBackendSelection:
    def test_small_store_routes_to_single(self, fleet):
        mod, _ = fleet
        with EnginePool(mod, shard_threshold=1000) as pool:
            assert pool.backend_kind() == "single"

    def test_large_store_routes_to_sharded(self, fleet):
        mod, _ = fleet
        with EnginePool(mod, shard_threshold=10) as pool:
            assert pool.backend_kind() == "sharded"

    def test_force_backend_overrides_size(self, fleet):
        mod, _ = fleet
        with EnginePool(mod, shard_threshold=10, force_backend="single") as pool:
            assert pool.backend_kind() == "single"

    def test_engines_stay_warm_across_groups(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        with EnginePool(mod) as pool:
            pool.answer_group(query_ids, lo, hi)
            engine = pool.single_engine()
            pool.answer_group(query_ids, lo, hi)
            assert pool.single_engine() is engine
            assert engine.cache_info().hits > 0

    def test_invalid_options_rejected(self, fleet):
        mod, _ = fleet
        with pytest.raises(ValueError, match="shard_threshold"):
            EnginePool(mod, shard_threshold=0)
        with pytest.raises(ValueError, match="unknown backend"):
            EnginePool(mod, force_backend="gpu")
        with pytest.raises(ValueError):
            EnginePool(
                mod, force_backend="sharded", mp_start_method="teleport"
            ).sharded_engine()

    def test_warm_up_builds_the_routed_backend(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        with EnginePool(mod, force_backend="single") as pool:
            assert pool.warm_up() == "single"
            engine = pool.single_engine()
            pool.answer_group(query_ids, lo, hi)
            assert pool.single_engine() is engine  # warm engine was reused
        with EnginePool(mod, force_backend="sharded", num_shards=2) as pool:
            assert pool.warm_up() == "sharded"
            sharded = pool.sharded_engine()
            result = pool.answer_group(query_ids, lo, hi)
            assert result.backend == "sharded"
            assert pool.sharded_engine() is sharded

    def test_mp_start_method_reaches_the_sharded_engine(self, fleet):
        mod, _ = fleet
        with EnginePool(
            mod, force_backend="sharded", mp_start_method="forkserver"
        ) as pool:
            assert pool.sharded_engine()._mp_start_method == "forkserver"


class TestExactness:
    @pytest.mark.parametrize("backend", ["single", "sharded"])
    @pytest.mark.parametrize(
        "variant,fraction", [("sometime", 0.0), ("always", 0.0), ("fraction", 0.4)]
    )
    def test_answers_match_direct_engine(self, fleet, backend, variant, fraction):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        direct = QueryEngine(mod)
        expected = {
            query_id: direct.answer(
                query_id, lo, hi, variant=variant, fraction=fraction
            )
            for query_id in query_ids
        }
        with EnginePool(mod, force_backend=backend, num_shards=3) as pool:
            result = pool.answer_group(
                query_ids, lo, hi, variant=variant, fraction=fraction
            )
        assert result.backend == backend
        assert result.answers == expected
