"""Service-level observability: stats snapshots, metrics, and explain."""

import asyncio
import dataclasses

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import QueryRequest, QueryService, ServiceStats
from repro.workloads.scenarios import multi_query_fleet


@pytest.fixture(scope="module")
def fleet():
    return multi_query_fleet(num_vehicles=24, num_queries=4, seed=7)


def run(coro):
    return asyncio.run(coro)


def serve_some(service_options=None, repeats=1):
    async def _run():
        mod, query_ids = multi_query_fleet(num_vehicles=24, num_queries=4, seed=7)
        lo, hi = mod.common_time_span()
        async with QueryService(mod, **(service_options or {})) as service:
            for _ in range(repeats):
                await service.submit_all(
                    [QueryRequest(query_id, lo, hi) for query_id in query_ids]
                )
            return service, service.stats(), service.metrics_snapshot()

    return run(_run())


class TestStatsSnapshot:
    def test_stats_is_immutable(self):
        _service, stats, _snapshot = serve_some()
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.submitted = 0

    def test_stats_values(self):
        _service, stats, _snapshot = serve_some()
        assert stats.submitted == 4
        assert stats.evaluated + stats.cache_hits == 4
        assert stats.rejected == 0
        assert stats.batches >= 1
        assert sum(stats.backend_counts.values()) == stats.evaluated

    def test_backend_counts_mutation_does_not_leak(self):
        # Regression: the live mutable stats object (and its shared
        # backend_counts dict) used to leak internal state to callers.
        async def _run():
            mod, query_ids = multi_query_fleet(
                num_vehicles=24, num_queries=4, seed=7
            )
            lo, hi = mod.common_time_span()
            async with QueryService(mod, force_backend="single") as service:
                await service.submit(QueryRequest(query_ids[0], lo, hi))
                first = service.stats()
                first.backend_counts["single"] = 999
                first.backend_counts["bogus"] = 1
                second = service.stats()
                return first, second

        first, second = run(_run())
        assert second.backend_counts == {"single": 1}
        assert "bogus" not in second.backend_counts

    def test_default_backend_counts_not_shared_between_instances(self):
        # Regression: a mutable default would alias every bare ServiceStats.
        first = ServiceStats()
        second = ServiceStats()
        assert first.backend_counts is not second.backend_counts
        first.backend_counts["single"] = 5
        assert second.backend_counts == {}

    def test_reset_zeroes_stats_and_metrics(self):
        async def _run():
            mod, query_ids = multi_query_fleet(
                num_vehicles=24, num_queries=4, seed=7
            )
            lo, hi = mod.common_time_span()
            async with QueryService(mod) as service:
                await service.submit(QueryRequest(query_ids[0], lo, hi))
                service.reset()
                return service.stats(), service.metrics_snapshot()

        stats, snapshot = run(_run())
        assert stats.submitted == 0
        assert stats.backend_counts == {}
        assert stats.max_queue_depth == 0
        assert snapshot["repro_service_requests_total"]["value"] == 0.0


class TestMetricsSurface:
    def test_snapshot_covers_the_whole_stack(self):
        _service, _stats, snapshot = serve_some(repeats=2)
        assert snapshot["repro_service_requests_total"]["value"] == 8.0
        assert snapshot["repro_service_cache_hits_total"]["value"] == 4.0
        assert "repro_service_queue_depth" in snapshot
        assert snapshot["repro_service_latency_seconds"]["count"] == 8
        assert snapshot["repro_service_coalesce_width"]["count"] >= 1
        # The pooled engine shares the service registry.
        assert any(key.startswith("repro_engine_") for key in snapshot)
        # Result-cache counters live in the same registry.
        assert snapshot["repro_service_result_cache_hits_total"]["value"] == 4.0

    def test_shared_registry_can_be_injected(self):
        registry = MetricsRegistry()

        async def _run():
            mod, query_ids = multi_query_fleet(
                num_vehicles=24, num_queries=4, seed=7
            )
            lo, hi = mod.common_time_span()
            async with QueryService(mod, registry=registry) as service:
                await service.submit(QueryRequest(query_ids[0], lo, hi))
                return service.registry

        assert run(_run()) is registry
        assert registry.get("repro_service_requests_total").value == 1.0

    def test_prometheus_rendering(self):
        async def _run():
            mod, query_ids = multi_query_fleet(
                num_vehicles=24, num_queries=4, seed=7
            )
            lo, hi = mod.common_time_span()
            async with QueryService(mod) as service:
                await service.submit(QueryRequest(query_ids[0], lo, hi))
                return service.metrics_prometheus()

        text = run(_run())
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_total 1.0" in text
        assert 'repro_service_latency_seconds_bucket{le="+Inf"} 1' in text


class TestExplain:
    def test_explain_returns_span_tree_and_exact_answer(self):
        async def _run():
            mod, query_ids = multi_query_fleet(
                num_vehicles=24, num_queries=4, seed=7
            )
            lo, hi = mod.common_time_span()
            async with QueryService(mod, force_backend="single") as service:
                request = QueryRequest(query_ids[0], lo, hi)
                explained = await service.explain(request)
                served = await service.submit(request)
                cached = await service.explain(request)
                return explained, served, cached

        explained, served, cached = run(_run())
        assert explained.response.answer == served.answer
        assert explained.span.name == "service.explain"
        assert explained.span.attrs["backend"] == "single"
        assert explained.span.find("pool.answer_group") is not None
        assert explained.span.find("engine.prepare_batch") is not None
        rendered = explained.render()
        assert "service.explain" in rendered
        assert "ms" in rendered
        # The first explain primed the cache; the second is served from it.
        assert cached.span.attrs["backend"] == "cache"
        assert cached.response.answer == served.answer

    def test_explain_does_not_disturb_service_stats(self):
        async def _run():
            mod, query_ids = multi_query_fleet(
                num_vehicles=24, num_queries=4, seed=7
            )
            lo, hi = mod.common_time_span()
            async with QueryService(mod) as service:
                await service.explain(QueryRequest(query_ids[0], lo, hi))
                return service.stats()

        stats = run(_run())
        assert stats.submitted == 0
        assert stats.evaluated == 0
