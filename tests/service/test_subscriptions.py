"""The async delta bridge: fan-out, filtering, overflow, and lifecycle."""

import asyncio

import pytest

from repro.service import QueryService
from repro.streaming import ContinuousMonitor
from repro.streaming.events import NeighborAppeared
from repro.workloads.scenarios import streaming_fleet


def run(coro):
    return asyncio.run(coro)


class FakeMonitor:
    """Minimal stand-in exposing the monitor's subscribe() shape."""

    def __init__(self):
        self.callbacks = []

    def subscribe(self, callback, query_key=None):
        entry = callback
        self.callbacks.append(entry)

        def unsubscribe():
            if entry in self.callbacks:
                self.callbacks.remove(entry)

        return unsubscribe

    def emit(self, event):
        for callback in list(self.callbacks):
            callback(event)


def event(query_key="q0", neighbor="n", batch=1):
    return NeighborAppeared(
        query_key=query_key, query_id="veh", batch=batch, neighbor_id=neighbor
    )


async def drain(subscription, limit=100):
    received = []
    while len(received) < limit:
        try:
            item = await asyncio.wait_for(subscription.get(), timeout=0.2)
        except asyncio.TimeoutError:
            break
        if item is None:
            break
        received.append(item)
    return received


class TestBridge:
    def test_events_fan_out_to_every_subscriber(self):
        async def scenario():
            monitor = FakeMonitor()
            mod = streaming_fleet(num_vehicles=4, num_queries=1).mod
            async with QueryService(mod) as service:
                service.attach_monitor(monitor)
                first = service.subscribe()
                second = service.subscribe()
                monitor.emit(event(neighbor="a"))
                monitor.emit(event(neighbor="b"))
                await asyncio.sleep(0)
                return await drain(first), await drain(second)

        got_first, got_second = run(scenario())
        assert [e.neighbor_id for e in got_first] == ["a", "b"]
        assert [e.neighbor_id for e in got_second] == ["a", "b"]

    def test_query_key_filtering(self):
        async def scenario():
            monitor = FakeMonitor()
            mod = streaming_fleet(num_vehicles=4, num_queries=1).mod
            async with QueryService(mod) as service:
                service.attach_monitor(monitor)
                only_q1 = service.subscribe(query_key="q1")
                monitor.emit(event(query_key="q0", neighbor="skip"))
                monitor.emit(event(query_key="q1", neighbor="take"))
                await asyncio.sleep(0)
                return await drain(only_q1)

        received = run(scenario())
        assert [e.neighbor_id for e in received] == ["take"]

    def test_overflow_drops_oldest_and_counts(self):
        async def scenario():
            monitor = FakeMonitor()
            mod = streaming_fleet(num_vehicles=4, num_queries=1).mod
            async with QueryService(mod) as service:
                service.attach_monitor(monitor)
                subscription = service.subscribe(buffer=2)
                for index in range(5):
                    monitor.emit(event(neighbor=f"n{index}"))
                await asyncio.sleep(0)
                received = await drain(subscription)
                return received, subscription.dropped

        received, dropped = run(scenario())
        assert [e.neighbor_id for e in received] == ["n3", "n4"]
        assert dropped == 3

    def test_close_ends_iteration(self):
        async def scenario():
            monitor = FakeMonitor()
            mod = streaming_fleet(num_vehicles=4, num_queries=1).mod
            async with QueryService(mod) as service:
                service.attach_monitor(monitor)
                subscription = service.subscribe()
                monitor.emit(event(neighbor="a"))
                await asyncio.sleep(0)
                subscription.close()
                collected = [delta async for delta in subscription]
                assert await subscription.get() is None
                return collected

        collected = run(scenario())
        assert [e.neighbor_id for e in collected] == ["a"]

    def test_attach_requires_running_service(self):
        from repro.service import ServiceClosed

        mod = streaming_fleet(num_vehicles=4, num_queries=1).mod
        service = QueryService(mod)
        with pytest.raises(ServiceClosed):
            service.attach_monitor(FakeMonitor())
        with pytest.raises(ServiceClosed):
            service.subscribe()


class TestRealMonitorIntegration:
    def test_live_monitor_deltas_reach_async_consumer(self):
        scenario_data = streaming_fleet(
            num_vehicles=10, num_queries=2, num_batches=2
        )

        async def scenario():
            monitor = ContinuousMonitor(scenario_data.mod)
            synchronous = []
            monitor.subscribe(synchronous.append)
            async with QueryService(scenario_data.mod) as service:
                service.attach_monitor(monitor)
                subscription = service.subscribe()
                registered = monitor.register(
                    scenario_data.query_ids[0], sliding=10.0
                )
                for object_id in scenario_data.mod.object_ids:
                    monitor.track(
                        object_id,
                        max_speed=scenario_data.max_speed,
                        minimum_radius=scenario_data.uncertainty_radius,
                    )
                for batch in scenario_data.batches:
                    for object_id, reports in batch.items():
                        monitor.ingest(object_id, reports)
                    monitor.apply()
                await asyncio.sleep(0)
                received = await drain(subscription)
                return registered.key, synchronous, received

        key, synchronous, received = run(scenario())
        # Every delta a synchronous subscriber saw (registration included)
        # must reach the async consumer, in order and tagged with the key.
        assert received == synchronous
        assert len(received) > 0
        assert all(delta.query_key == key for delta in received)

    def test_monitor_updates_invalidate_service_cache(self):
        scenario_data = streaming_fleet(
            num_vehicles=10, num_queries=2, num_batches=1
        )

        async def scenario():
            mod = scenario_data.mod
            monitor = ContinuousMonitor(mod)
            lo, hi = mod.common_time_span()
            async with QueryService(mod) as service:
                first = await service.query(scenario_data.query_ids[0], lo, hi)
                for object_id in mod.object_ids:
                    monitor.track(
                        object_id,
                        max_speed=scenario_data.max_speed,
                        minimum_radius=scenario_data.uncertainty_radius,
                    )
                for object_id, reports in scenario_data.batches[0].items():
                    monitor.ingest(object_id, reports)
                monitor.apply()
                second = await service.query(
                    scenario_data.query_ids[0], lo, hi
                )
                return first, second

        first, second = run(scenario())
        assert not first.from_cache
        # The ingested batch advanced the MOD revision, so the service must
        # recompute rather than serve the stale cached answer.
        assert not second.from_cache
        assert second.revision > first.revision
