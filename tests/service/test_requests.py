"""Validation and identity semantics of the typed request shapes."""

import pytest

from repro.service import QueryRequest


class TestQueryRequestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty query window"):
            QueryRequest("q", 10.0, 5.0)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            QueryRequest("q", 0.0, 10.0, variant="often")

    def test_fraction_requires_fraction_variant(self):
        with pytest.raises(ValueError, match="only meaningful"):
            QueryRequest("q", 0.0, 10.0, variant="sometime", fraction=0.5)

    def test_fraction_range_enforced(self):
        with pytest.raises(ValueError, match="fraction"):
            QueryRequest("q", 0.0, 10.0, variant="fraction", fraction=1.5)

    def test_nonpositive_band_width_rejected(self):
        with pytest.raises(ValueError, match="band_width"):
            QueryRequest("q", 0.0, 10.0, band_width=0.0)

    def test_zero_length_window_allowed(self):
        request = QueryRequest("q", 5.0, 5.0)
        assert request.t_start == request.t_end == 5.0


class TestIdentity:
    def test_fingerprint_distinguishes_semantics(self):
        base = QueryRequest("q", 0.0, 10.0)
        assert base.fingerprint == QueryRequest("q", 0.0, 10.0).fingerprint
        different = [
            QueryRequest("p", 0.0, 10.0),
            QueryRequest("q", 1.0, 10.0),
            QueryRequest("q", 0.0, 9.0),
            QueryRequest("q", 0.0, 10.0, variant="always"),
            QueryRequest("q", 0.0, 10.0, variant="fraction", fraction=0.5),
            QueryRequest("q", 0.0, 10.0, band_width=2.0),
        ]
        for request in different:
            assert request.fingerprint != base.fingerprint

    def test_group_key_ignores_query_id(self):
        assert (
            QueryRequest("a", 0.0, 10.0).group_key
            == QueryRequest("b", 0.0, 10.0).group_key
        )
        assert (
            QueryRequest("a", 0.0, 10.0).group_key
            != QueryRequest("a", 0.0, 10.0, variant="always").group_key
        )

    def test_requests_are_hashable(self):
        assert len({QueryRequest("q", 0.0, 10.0), QueryRequest("q", 0.0, 10.0)}) == 1
