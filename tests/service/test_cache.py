"""TTL expiry, revision invalidation, and LRU behavior of the result cache."""

from repro.service import QueryRequest, ResultCache

ANSWER_A = {"a": ((0.0, 5.0),)}
ANSWER_B = {"b": ((1.0, 2.0),)}


def fp(query_id="q", t_start=0.0, t_end=10.0):
    return QueryRequest(query_id, t_start, t_end).fingerprint


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRevisionKeying:
    def test_hit_requires_matching_revision(self):
        cache = ResultCache()
        cache.put(fp(), 3, ANSWER_A)
        assert cache.get(fp(), 3) == ANSWER_A
        assert cache.get(fp(), 4) is None  # store mutated -> stale

    def test_revision_mismatch_drops_the_stale_entry(self):
        cache = ResultCache()
        cache.put(fp(), 3, ANSWER_A)
        cache.get(fp(), 4)
        assert len(cache) == 0
        assert cache.info().invalidations == 1

    def test_newer_revision_displaces_old_answer(self):
        cache = ResultCache()
        cache.put(fp(), 3, ANSWER_A)
        cache.put(fp(), 5, ANSWER_B)
        assert len(cache) == 1
        assert cache.get(fp(), 5) == ANSWER_B
        assert cache.get(fp(), 3) is None


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        cache.put(fp(), 1, ANSWER_A)
        clock.advance(9.99)
        assert cache.get(fp(), 1) == ANSWER_A
        clock.advance(0.02)
        assert cache.get(fp(), 1) is None
        assert cache.info().expirations == 1

    def test_no_ttl_means_revision_only_staleness(self):
        clock = FakeClock()
        cache = ResultCache(ttl=None, clock=clock)
        cache.put(fp(), 1, ANSWER_A)
        clock.advance(1e9)
        assert cache.get(fp(), 1) == ANSWER_A

    def test_put_refreshes_the_ttl(self):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        cache.put(fp(), 1, ANSWER_A)
        clock.advance(8.0)
        cache.put(fp(), 1, ANSWER_B)
        clock.advance(8.0)
        assert cache.get(fp(), 1) == ANSWER_B


class TestCapacity:
    def test_lru_eviction_beyond_capacity(self):
        cache = ResultCache(capacity=2)
        cache.put(fp("a"), 1, ANSWER_A)
        cache.put(fp("b"), 1, ANSWER_A)
        cache.get(fp("a"), 1)  # touch "a" so "b" is the LRU entry
        cache.put(fp("c"), 1, ANSWER_A)
        assert cache.get(fp("a"), 1) is not None
        assert cache.get(fp("b"), 1) is None
        assert cache.get(fp("c"), 1) is not None
        assert cache.info().evictions == 1

    def test_counters_and_hit_ratio(self):
        cache = ResultCache()
        cache.put(fp(), 1, ANSWER_A)
        cache.get(fp(), 1)
        cache.get(fp("other"), 1)
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert info.hit_ratio == 0.5
