"""Bounded-queue admission: backpressure, rejection, and drain-on-stop."""

import asyncio

import pytest

from repro.service import (
    QueryRequest,
    QueryService,
    ServiceOverloaded,
)
from repro.workloads.scenarios import multi_query_fleet


@pytest.fixture(scope="module")
def fleet():
    return multi_query_fleet(num_vehicles=20, num_queries=8)


def run(coro):
    return asyncio.run(coro)


class TestRejectPolicy:
    def test_overflow_rejects_fast(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            async with QueryService(
                mod, queue_limit=4, admission="reject"
            ) as service:
                results = await asyncio.gather(
                    *(
                        service.submit(QueryRequest(query_id, lo, hi))
                        for query_id in query_ids
                    ),
                    return_exceptions=True,
                )
                return results, service.stats()

        results, stats = run(scenario())
        served = [r for r in results if not isinstance(r, BaseException)]
        rejected = [r for r in results if isinstance(r, ServiceOverloaded)]
        # All eight submissions land before the dispatcher gets scheduled:
        # exactly queue_limit are admitted, the rest fail fast.
        assert len(served) == 4
        assert len(rejected) == 4
        assert stats.rejected == 4
        assert all(
            not isinstance(r, BaseException) or isinstance(r, ServiceOverloaded)
            for r in results
        )

    def test_rejected_request_can_be_resubmitted(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            async with QueryService(
                mod, queue_limit=1, admission="reject"
            ) as service:
                results = await asyncio.gather(
                    *(
                        service.submit(QueryRequest(query_id, lo, hi))
                        for query_id in query_ids[:3]
                    ),
                    return_exceptions=True,
                )
                retry_id = next(
                    request.query_id
                    for request, outcome in zip(
                        [QueryRequest(q, lo, hi) for q in query_ids[:3]], results
                    )
                    if isinstance(outcome, ServiceOverloaded)
                )
                response = await service.query(retry_id, lo, hi)
                return response

        response = run(scenario())
        assert response.answer is not None


class TestWaitPolicy:
    def test_backpressure_serves_everything(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            async with QueryService(
                mod, queue_limit=2, admission="wait"
            ) as service:
                responses = await service.submit_all(
                    [QueryRequest(query_id, lo, hi) for query_id in query_ids]
                )
                return responses, service.stats()

        responses, stats = run(scenario())
        assert len(responses) == len(query_ids)
        assert stats.rejected == 0
        assert stats.evaluated == len(query_ids)
        # The tiny queue forces several dispatcher rounds instead of one.
        assert stats.batches >= 2

    def test_queue_depth_is_bounded(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            async with QueryService(
                mod, queue_limit=2, admission="wait"
            ) as service:
                await service.submit_all(
                    [QueryRequest(query_id, lo, hi) for query_id in query_ids]
                )
                return service.stats()

        stats = run(scenario())
        assert stats.max_queue_depth <= 2


class TestDrainOnStop:
    def test_stop_serves_already_admitted_requests(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            service = QueryService(mod)
            await service.start()
            pending = [
                asyncio.create_task(
                    service.submit(QueryRequest(query_id, lo, hi))
                )
                for query_id in query_ids[:3]
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await service.stop()
            return await asyncio.gather(*pending, return_exceptions=True)

        results = run(scenario())
        assert all(not isinstance(result, BaseException) for result in results)
