"""Test package marker so relative imports of the shared conftest resolve."""
