"""Oracle, caching, coalescing, and lifecycle tests of the QueryService.

The central claim: a service response is byte-identical to a direct
:meth:`repro.engine.QueryEngine.answer` call at the same store state, for
every variant and both pool backends — the async front end is pure
plumbing, never semantics.
"""

import asyncio

import pytest

from repro.engine import QueryEngine
from repro.service import (
    QueryRequest,
    QueryService,
    ServiceClosed,
)
from repro.workloads.scenarios import multi_query_fleet, sharded_fleet


@pytest.fixture(scope="module")
def fleet():
    return multi_query_fleet(num_vehicles=24, num_queries=4)


def run(coro):
    return asyncio.run(coro)


class TestOracleEquality:
    @pytest.mark.parametrize(
        "variant,fraction", [("sometime", 0.0), ("always", 0.0), ("fraction", 0.4)]
    )
    def test_single_backend_matches_direct_engine(self, fleet, variant, fraction):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        direct = QueryEngine(mod)
        expected = {
            query_id: direct.answer(
                query_id, lo, hi, variant=variant, fraction=fraction
            )
            for query_id in query_ids
        }

        async def serve():
            async with QueryService(mod, force_backend="single") as service:
                return await service.submit_all(
                    [
                        QueryRequest(
                            query_id, lo, hi, variant=variant, fraction=fraction
                        )
                        for query_id in query_ids
                    ]
                )

        responses = run(serve())
        assert {
            response.request.query_id: response.answer for response in responses
        } == expected

    @pytest.mark.parametrize(
        "variant,fraction", [("sometime", 0.0), ("always", 0.0), ("fraction", 0.4)]
    )
    def test_sharded_backend_matches_direct_engine(self, variant, fraction):
        mod, query_ids = sharded_fleet(num_districts=4, vehicles_per_district=8)
        lo, hi = mod.common_time_span()
        direct = QueryEngine(mod)
        expected = {
            query_id: direct.answer(
                query_id, lo, hi, variant=variant, fraction=fraction
            )
            for query_id in query_ids
        }

        async def serve():
            async with QueryService(
                mod, force_backend="sharded", num_shards=4
            ) as service:
                responses = await service.submit_all(
                    [
                        QueryRequest(
                            query_id, lo, hi, variant=variant, fraction=fraction
                        )
                        for query_id in query_ids
                    ]
                )
                assert all(r.backend == "sharded" for r in responses)
                return responses

        responses = run(serve())
        assert {
            response.request.query_id: response.answer for response in responses
        } == expected

    def test_duplicate_requests_share_one_evaluation(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        request = QueryRequest(query_ids[0], lo, hi)

        async def serve():
            async with QueryService(mod) as service:
                responses = await service.submit_all([request] * 4)
                return responses, service.stats()

        responses, stats = run(serve())
        assert len({id(r.answer) for r in responses if not r.from_cache}) <= 1
        answers = {tuple(sorted(r.answer, key=str)) for r in responses}
        assert len(answers) == 1
        assert stats.batches == 1


class TestCoalescing:
    def test_concurrent_same_window_requests_ride_one_batch(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def serve():
            async with QueryService(mod) as service:
                responses = await service.submit_all(
                    [QueryRequest(query_id, lo, hi) for query_id in query_ids]
                )
                return responses, service.stats()

        responses, stats = run(serve())
        assert stats.batches == 1
        assert all(response.batch_size == len(query_ids) for response in responses)

    def test_distinct_windows_split_into_groups(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        mid = (lo + hi) / 2.0

        async def serve():
            async with QueryService(mod) as service:
                await service.submit_all(
                    [
                        QueryRequest(query_ids[0], lo, mid),
                        QueryRequest(query_ids[1], lo, mid),
                        QueryRequest(query_ids[2], mid, hi),
                    ]
                )
                return service.stats()

        stats = run(serve())
        assert stats.batches == 2
        assert stats.evaluated == 3


class TestResultCache:
    def test_repeat_request_hits_cache(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def serve():
            async with QueryService(mod) as service:
                first = await service.query(query_ids[0], lo, hi)
                second = await service.query(query_ids[0], lo, hi)
                return first, second

        first, second = run(serve())
        assert not first.from_cache
        assert second.from_cache
        assert second.answer == first.answer

    def test_store_mutation_invalidates_cached_answer(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def serve():
            async with QueryService(mod) as service:
                first = await service.query(query_ids[0], lo, hi)
                # Same-motion replacement still bumps the revision, so the
                # cached answer must stop being served even though it would
                # have been correct.
                mod.replace_trajectory(mod.get(query_ids[1]))
                second = await service.query(query_ids[0], lo, hi)
                direct = QueryEngine(mod).answer(query_ids[0], lo, hi)
                return first, second, direct

        first, second, direct = run(serve())
        assert not second.from_cache
        assert second.revision > first.revision
        assert second.answer == direct

    def test_ttl_zero_is_rejected(self, fleet):
        mod, _ = fleet
        with pytest.raises(ValueError, match="ttl"):
            QueryService(mod, cache_ttl=0.0)


class TestLifecycleAndErrors:
    def test_submit_before_start_raises(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        service = QueryService(mod)

        async def attempt():
            await service.submit(QueryRequest(query_ids[0], lo, hi))

        with pytest.raises(ServiceClosed):
            run(attempt())

    def test_submit_after_stop_raises(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            service = QueryService(mod)
            await service.start()
            await service.stop()
            with pytest.raises(ServiceClosed):
                await service.submit(QueryRequest(query_ids[0], lo, hi))

        run(scenario())

    def test_unknown_query_id_propagates_keyerror(self, fleet):
        mod, _ = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            async with QueryService(mod) as service:
                with pytest.raises(KeyError):
                    await service.query("no-such-vehicle", lo, hi)
                # The dispatcher survives the failed group and keeps serving.
                response = await service.query(mod.object_ids[0], lo, hi)
                assert response.answer

        run(scenario())

    def test_pool_options_conflict_with_prebuilt_pool(self, fleet):
        from repro.service import EnginePool

        mod, _ = fleet
        with pytest.raises(ValueError, match="pool_options"):
            QueryService(mod, pool=EnginePool(mod), shard_threshold=5)

    def test_caller_provided_pool_survives_service_stop(self, fleet):
        from repro.service import EnginePool

        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def scenario():
            with EnginePool(mod, force_backend="single") as pool:
                async with QueryService(mod, pool=pool) as service:
                    await service.query(query_ids[0], lo, hi)
                engine = pool.single_engine()
                # The shared pool's warm engine outlives the service...
                assert engine.cache_info().size > 0
                async with QueryService(mod, pool=pool) as service:
                    response = await service.query(query_ids[0], lo, hi)
                # ...so a second service starts with its context cache hot.
                assert pool.single_engine() is engine
                return response

        response = run(scenario())
        assert response.answer

    def test_stats_report_backend_and_counts(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()

        async def serve():
            async with QueryService(mod, force_backend="single") as service:
                await service.submit_all(
                    [QueryRequest(query_id, lo, hi) for query_id in query_ids]
                )
                await service.query(query_ids[0], lo, hi)
                return service.stats(), service.cache_info()

        stats, cache_info = run(serve())
        assert stats.submitted == len(query_ids) + 1
        assert stats.cache_hits == 1
        assert stats.backend_counts == {"single": len(query_ids)}
        assert stats.coalescing_factor == len(query_ids)
        assert cache_info.size == len(query_ids)
