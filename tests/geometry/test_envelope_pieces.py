"""Tests for the Envelope/EnvelopePiece containers."""

import pytest

from repro.geometry.envelope.hyperbola import DistanceFunction
from repro.geometry.envelope.pieces import Envelope, EnvelopePiece


def constant_function(object_id, distance, t_lo=0.0, t_hi=10.0) -> DistanceFunction:
    return DistanceFunction.single_segment(object_id, distance, 0.0, 0.0, 0.0, t_lo, t_hi)


@pytest.fixture
def two_piece_envelope() -> Envelope:
    near = constant_function("near", 1.0)
    far = constant_function("far", 2.0)
    return Envelope(
        [EnvelopePiece(near, 0.0, 6.0), EnvelopePiece(far, 6.0, 10.0)]
    )


class TestEnvelopePiece:
    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            EnvelopePiece(constant_function("a", 1.0), 5.0, 4.0)

    def test_duration_and_object_id(self):
        piece = EnvelopePiece(constant_function("a", 1.0), 1.0, 4.0)
        assert piece.duration == 3.0
        assert piece.object_id == "a"

    def test_clipped_overlapping(self):
        piece = EnvelopePiece(constant_function("a", 1.0), 0.0, 10.0)
        clipped = piece.clipped(2.0, 4.0)
        assert (clipped.t_start, clipped.t_end) == (2.0, 4.0)

    def test_clipped_disjoint_returns_none(self):
        piece = EnvelopePiece(constant_function("a", 1.0), 0.0, 1.0)
        assert piece.clipped(5.0, 6.0) is None


class TestEnvelope:
    def test_requires_pieces(self):
        with pytest.raises(ValueError):
            Envelope([])

    def test_rejects_overlapping_pieces(self):
        a = constant_function("a", 1.0)
        b = constant_function("b", 2.0)
        with pytest.raises(ValueError):
            Envelope([EnvelopePiece(a, 0.0, 6.0), EnvelopePiece(b, 5.0, 10.0)])

    def test_coalesces_adjacent_pieces_of_same_function(self):
        a = constant_function("a", 1.0)
        envelope = Envelope([EnvelopePiece(a, 0.0, 5.0), EnvelopePiece(a, 5.0, 10.0)])
        assert len(envelope) == 1
        assert envelope.pieces[0].t_start == 0.0
        assert envelope.pieces[0].t_end == 10.0

    def test_span_and_contiguity(self, two_piece_envelope):
        assert two_piece_envelope.t_start == 0.0
        assert two_piece_envelope.t_end == 10.0
        assert two_piece_envelope.is_contiguous

    def test_gap_detection(self):
        a = constant_function("a", 1.0)
        b = constant_function("b", 2.0)
        gapped = Envelope([EnvelopePiece(a, 0.0, 3.0), EnvelopePiece(b, 5.0, 10.0)])
        assert not gapped.is_contiguous

    def test_owner_and_value_lookup(self, two_piece_envelope):
        assert two_piece_envelope.owner_at(3.0) == "near"
        assert two_piece_envelope.owner_at(8.0) == "far"
        assert two_piece_envelope.value(3.0) == pytest.approx(1.0)
        assert two_piece_envelope.value(8.0) == pytest.approx(2.0)

    def test_lookup_outside_span_raises(self, two_piece_envelope):
        with pytest.raises(ValueError):
            two_piece_envelope.value(11.0)

    def test_lookup_in_gap_raises(self):
        a = constant_function("a", 1.0)
        b = constant_function("b", 2.0)
        gapped = Envelope([EnvelopePiece(a, 0.0, 3.0), EnvelopePiece(b, 5.0, 10.0)])
        with pytest.raises(ValueError):
            gapped.value(4.0)

    def test_critical_times(self, two_piece_envelope):
        assert two_piece_envelope.critical_times == [0.0, 6.0, 10.0]

    def test_owner_ids(self, two_piece_envelope):
        assert two_piece_envelope.owner_ids == ["near", "far"]
        assert two_piece_envelope.distinct_owner_ids == ["near", "far"]

    def test_restricted(self, two_piece_envelope):
        restricted = two_piece_envelope.restricted(5.0, 7.0)
        assert restricted.t_start == pytest.approx(5.0)
        assert restricted.t_end == pytest.approx(7.0)
        assert restricted.owner_ids == ["near", "far"]

    def test_restricted_disjoint_raises(self, two_piece_envelope):
        with pytest.raises(ValueError):
            two_piece_envelope.restricted(20.0, 30.0)

    def test_total_duration_of(self, two_piece_envelope):
        assert two_piece_envelope.total_duration_of("near") == pytest.approx(6.0)
        assert two_piece_envelope.total_duration_of("far") == pytest.approx(4.0)
        assert two_piece_envelope.total_duration_of("unknown") == 0.0

    def test_sample_skips_gaps(self):
        a = constant_function("a", 1.0)
        b = constant_function("b", 2.0)
        gapped = Envelope([EnvelopePiece(a, 0.0, 3.0), EnvelopePiece(b, 5.0, 10.0)])
        samples = gapped.sample([1.0, 4.0, 6.0])
        assert [s[0] for s in samples] == [1.0, 6.0]
        assert [s[2] for s in samples] == ["a", "b"]
