"""Tests for circle-circle geometry (lens areas, intersection points)."""

import math

import pytest

from repro.geometry.circle_ops import (
    annulus_area,
    chord_angles,
    circle_circle_intersection_points,
    circle_intersection_area,
    disk_intersection_area,
)
from repro.geometry.disk import Disk
from repro.geometry.point import Point2D


class TestCircleIntersectionArea:
    def test_disjoint_circles_have_zero_area(self):
        area = circle_intersection_area(Point2D(0, 0), 1.0, Point2D(5, 0), 1.0)
        assert area == 0.0

    def test_contained_circle_gives_smaller_circle_area(self):
        area = circle_intersection_area(Point2D(0, 0), 3.0, Point2D(0.5, 0), 1.0)
        assert area == pytest.approx(math.pi)

    def test_coincident_circles_give_full_area(self):
        area = circle_intersection_area(Point2D(0, 0), 2.0, Point2D(0, 0), 2.0)
        assert area == pytest.approx(4.0 * math.pi)

    def test_half_overlap_is_symmetric(self):
        area_ab = circle_intersection_area(Point2D(0, 0), 1.0, Point2D(1, 0), 1.0)
        area_ba = circle_intersection_area(Point2D(1, 0), 1.0, Point2D(0, 0), 1.0)
        assert area_ab == pytest.approx(area_ba)

    def test_unit_circles_at_unit_distance_known_value(self):
        # Standard closed form: 2·acos(1/2) − (1/2)·sqrt(3) for r=1, d=1.
        expected = 2.0 * math.acos(0.5) - 0.5 * math.sqrt(3.0)
        area = circle_intersection_area(Point2D(0, 0), 1.0, Point2D(1, 0), 1.0)
        assert area == pytest.approx(expected, rel=1e-9)

    def test_tangent_circles_have_zero_area(self):
        area = circle_intersection_area(Point2D(0, 0), 1.0, Point2D(2, 0), 1.0)
        assert area == 0.0

    def test_zero_radius_gives_zero_area(self):
        assert circle_intersection_area(Point2D(0, 0), 0.0, Point2D(0, 0), 1.0) == 0.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            circle_intersection_area(Point2D(0, 0), -1.0, Point2D(0, 0), 1.0)

    def test_area_monotone_in_distance(self):
        distances = [0.0, 0.5, 1.0, 1.5, 1.9]
        areas = [
            circle_intersection_area(Point2D(0, 0), 1.0, Point2D(d, 0), 1.0)
            for d in distances
        ]
        assert all(a >= b - 1e-12 for a, b in zip(areas, areas[1:]))

    def test_disk_wrapper_matches(self):
        a = Disk(Point2D(0, 0), 1.0)
        b = Disk(Point2D(1, 0), 1.5)
        assert disk_intersection_area(a, b) == pytest.approx(
            circle_intersection_area(a.center, a.radius, b.center, b.radius)
        )


class TestCircleIntersectionPoints:
    def test_two_intersections(self):
        points = circle_circle_intersection_points(
            Point2D(0, 0), 1.0, Point2D(1, 0), 1.0
        )
        assert len(points) == 2
        for point in points:
            assert point.distance_to(Point2D(0, 0)) == pytest.approx(1.0)
            assert point.distance_to(Point2D(1, 0)) == pytest.approx(1.0)

    def test_tangent_circles_single_point(self):
        points = circle_circle_intersection_points(
            Point2D(0, 0), 1.0, Point2D(2, 0), 1.0
        )
        assert len(points) == 1
        assert points[0].is_close(Point2D(1.0, 0.0), tolerance=1e-9)

    def test_disjoint_circles_no_points(self):
        assert (
            circle_circle_intersection_points(Point2D(0, 0), 1.0, Point2D(5, 0), 1.0)
            == []
        )

    def test_contained_circles_no_points(self):
        assert (
            circle_circle_intersection_points(Point2D(0, 0), 3.0, Point2D(0.5, 0), 1.0)
            == []
        )

    def test_coincident_circles_raise(self):
        with pytest.raises(ValueError):
            circle_circle_intersection_points(Point2D(0, 0), 1.0, Point2D(0, 0), 1.0)


class TestChordAnglesAndAnnulus:
    def test_chord_angles_symmetric_configuration(self):
        alpha, beta = chord_angles(1.0, 1.0, 1.0)
        assert alpha == pytest.approx(beta)
        assert alpha == pytest.approx(math.acos(0.5))

    def test_chord_angles_require_proper_intersection(self):
        with pytest.raises(ValueError):
            chord_angles(5.0, 1.0, 1.0)

    def test_annulus_area(self):
        assert annulus_area(1.0, 2.0) == pytest.approx(3.0 * math.pi)

    def test_annulus_area_validation(self):
        with pytest.raises(ValueError):
            annulus_area(2.0, 1.0)
        with pytest.raises(ValueError):
            annulus_area(-1.0, 1.0)
