"""Edge cases of the divide-and-conquer envelope and the sweep merge.

Complements the property suites with the degenerate shapes that the
adversarial differential families exercise implicitly: empty inputs,
single-function windows, all-identical function sets, sub-tolerance
slivers, and zero-length windows.
"""

import pytest

from repro.core.tolerances import TIME_TOLERANCE
from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.hyperbola import DistanceFunction
from repro.geometry.envelope.merge import merge_envelopes
from repro.geometry.envelope.pieces import Envelope, EnvelopePiece

T_LO, T_HI = 0.0, 10.0


def _motion(object_id, x0, y0, vx, vy, t_lo=T_LO, t_hi=T_HI):
    return DistanceFunction.single_segment(object_id, x0, y0, vx, vy, t_lo, t_hi)


class TestLowerEnvelopeEdgeCases:
    def test_empty_collection_raises(self):
        with pytest.raises(ValueError, match="empty collection"):
            lower_envelope([], T_LO, T_HI)

    def test_inverted_window_raises(self):
        with pytest.raises(ValueError, match="empty window"):
            lower_envelope([_motion("a", 1.0, 0.0, 0.5, 0.0)], 10.0, 0.0)

    def test_single_function_spans_the_window(self):
        function = _motion("a", 3.0, 4.0, -0.2, 0.1)
        envelope = lower_envelope([function], T_LO, T_HI)
        assert len(envelope.pieces) == 1
        piece = envelope.pieces[0]
        assert piece.object_id == "a"
        assert piece.t_start == T_LO
        assert piece.t_end == T_HI

    def test_all_identical_functions_collapse_to_the_first(self):
        # Identical curves tie everywhere; the merge's first-argument
        # tie-break must hand the whole window to the first input, and
        # coalescing must leave a single piece.
        template = _motion("a", 2.0, -1.0, 0.3, 0.4)
        clones = [
            DistanceFunction(name, list(template.pieces))
            for name in ("a", "b", "c", "d")
        ]
        envelope = lower_envelope(clones, T_LO, T_HI)
        assert len(envelope.pieces) == 1
        assert envelope.pieces[0].object_id == "a"

    def test_zero_length_window(self):
        functions = [
            _motion("near", 1.0, 0.0, 0.0, 0.0, 5.0, 5.0),
            _motion("far", 9.0, 0.0, 0.0, 0.0, 5.0, 5.0),
        ]
        envelope = lower_envelope(functions, 5.0, 5.0)
        assert envelope.t_start == envelope.t_end == 5.0
        assert envelope.pieces[0].object_id == "near"


class TestMergeEnvelopesEdgeCases:
    def test_mismatched_windows_raise(self):
        left = lower_envelope([_motion("a", 1.0, 0.0, 0.0, 0.0)], T_LO, T_HI)
        right = lower_envelope(
            [_motion("b", 2.0, 0.0, 0.0, 0.0, 0.0, 5.0)], 0.0, 5.0
        )
        with pytest.raises(ValueError, match="same time window"):
            merge_envelopes(left, right)

    def test_merge_with_itself_is_identity(self):
        envelope = lower_envelope(
            [
                _motion("a", 1.0, 0.0, 0.8, 0.0),
                _motion("b", 9.0, 0.0, -0.9, 0.0),
            ],
            T_LO,
            T_HI,
        )
        merged = merge_envelopes(envelope, envelope)
        assert [
            (p.object_id, p.t_start, p.t_end) for p in merged.pieces
        ] == [(p.object_id, p.t_start, p.t_end) for p in envelope.pieces]

    def test_sub_tolerance_pieces_collapse(self):
        # A sliver piece narrower than the time tolerance must not
        # survive the merge sweep: its interval is skipped and the
        # neighbours' owners decide.
        low = _motion("low", 1.0, 0.0, 0.0, 0.0)
        high = _motion("high", 5.0, 0.0, 0.0, 0.0)
        sliver = TIME_TOLERANCE / 2.0
        left = Envelope(
            [
                EnvelopePiece(low, T_LO, 5.0),
                EnvelopePiece(high, 5.0, 5.0 + sliver),
                EnvelopePiece(low, 5.0 + sliver, T_HI),
            ]
        )
        right = Envelope([EnvelopePiece(high, T_LO, T_HI)])
        merged = merge_envelopes(left, right)
        assert len(merged.pieces) == 1
        assert merged.pieces[0].object_id == "low"
        assert all(
            piece.duration > TIME_TOLERANCE for piece in merged.pieces
        )

    def test_zero_length_window_falls_back_to_instant_comparison(self):
        t = 5.0
        near = _motion("near", 1.0, 0.0, 0.0, 0.0, t, t)
        far = _motion("far", 9.0, 0.0, 0.0, 0.0, t, t)
        left = Envelope([EnvelopePiece(far, t, t)])
        right = Envelope([EnvelopePiece(near, t, t)])
        merged = merge_envelopes(left, right)
        assert merged.pieces[0].object_id == "near"
