"""Tests for Env2, Merge_LE, the divide-and-conquer and naive envelope constructions."""

import numpy as np
import pytest

from repro.geometry.envelope.divide_conquer import lower_envelope
from repro.geometry.envelope.env2 import pairwise_envelope
from repro.geometry.envelope.hyperbola import DistanceFunction
from repro.geometry.envelope.merge import merge_envelopes
from repro.geometry.envelope.naive import naive_lower_envelope
from repro.geometry.envelope.pieces import Envelope, EnvelopePiece
from repro.utils.validation import (
    envelope_matches_pointwise_minimum,
    envelopes_equal_pointwise,
)

from ..conftest import make_linear_function, random_functions


class TestPairwiseEnvelope:
    def test_non_crossing_functions_single_piece(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 5.0, 0.0, 0.0, 0.0)
        envelope = pairwise_envelope(near, far, 0.0, 10.0)
        assert len(envelope) == 1
        assert envelope.owner_at(5.0) == "near"

    def test_single_crossing_two_pieces(self):
        receding = make_linear_function("receding", 1.0, 0.0, 1.0, 0.0)
        approaching = make_linear_function("approaching", 9.0, 0.0, -1.0, 0.0)
        envelope = pairwise_envelope(receding, approaching, 0.0, 10.0)
        assert envelope.owner_at(0.5) == "receding"
        assert envelope.owner_at(9.5) == "approaching"
        assert envelope_matches_pointwise_minimum(
            envelope, [receding, approaching], 0.0, 10.0
        )

    def test_two_crossings_three_pieces(self):
        # "swooping" dives below the constant function and comes back out.
        swooping = make_linear_function("swooping", -6.0, 0.5, 1.2, 0.0)
        constant = make_linear_function("constant", 3.0, 0.0, 0.0, 0.0)
        envelope = pairwise_envelope(swooping, constant, 0.0, 10.0)
        owners = envelope.owner_ids
        assert owners[0] == "constant"
        assert "swooping" in owners
        assert owners[-1] == "constant"
        assert envelope_matches_pointwise_minimum(
            envelope, [swooping, constant], 0.0, 10.0
        )

    def test_degenerate_zero_length_window(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 5.0, 0.0, 0.0, 0.0)
        envelope = pairwise_envelope(near, far, 4.0, 4.0)
        assert envelope.owner_at(4.0) == "near"

    def test_empty_window_rejected(self):
        near = make_linear_function("near", 1.0, 0.0, 0.0, 0.0)
        far = make_linear_function("far", 5.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            pairwise_envelope(near, far, 5.0, 4.0)


class TestMergeEnvelopes:
    def test_merge_matches_pointwise_minimum(self, rng):
        functions = random_functions(8, rng)
        left = lower_envelope(functions[:4], 0.0, 10.0)
        right = lower_envelope(functions[4:], 0.0, 10.0)
        merged = merge_envelopes(left, right)
        assert envelope_matches_pointwise_minimum(merged, functions, 0.0, 10.0)

    def test_merge_is_commutative_pointwise(self, rng):
        functions = random_functions(6, rng)
        left = lower_envelope(functions[:3], 0.0, 10.0)
        right = lower_envelope(functions[3:], 0.0, 10.0)
        assert envelopes_equal_pointwise(
            merge_envelopes(left, right), merge_envelopes(right, left)
        )

    def test_merge_rejects_mismatched_windows(self):
        a = make_linear_function("a", 1.0, 0.0, 0.0, 0.0, 0.0, 10.0)
        b = make_linear_function("b", 2.0, 0.0, 0.0, 0.0, 0.0, 5.0)
        env_a = Envelope([EnvelopePiece(a, 0.0, 10.0)])
        env_b = Envelope([EnvelopePiece(b, 0.0, 5.0)])
        with pytest.raises(ValueError):
            merge_envelopes(env_a, env_b)

    def test_merging_identical_owners_coalesces(self):
        a = make_linear_function("a", 1.0, 0.0, 0.0, 0.0)
        env = Envelope([EnvelopePiece(a, 0.0, 10.0)])
        merged = merge_envelopes(env, env)
        assert len(merged) == 1


class TestLowerEnvelopeConstruction:
    def test_single_function(self):
        only = make_linear_function("only", 2.0, 0.0, 0.0, 0.0)
        envelope = lower_envelope([only], 0.0, 10.0)
        assert len(envelope) == 1
        assert envelope.owner_at(5.0) == "only"

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            lower_envelope([], 0.0, 10.0)
        with pytest.raises(ValueError):
            naive_lower_envelope([], 0.0, 10.0)

    def test_known_scenario_owners(self, crossing_functions):
        envelope = lower_envelope(crossing_functions, 0.0, 10.0)
        # "a" starts nearest (distance 1), "b" ends nearest (distance 1 at t=10).
        assert envelope.owner_at(0.1) == "a"
        assert envelope.owner_at(9.9) == "b"

    def test_matches_pointwise_minimum_random(self, rng):
        functions = random_functions(20, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        assert envelope_matches_pointwise_minimum(envelope, functions, 0.0, 10.0)

    def test_divide_and_conquer_equals_naive(self, rng):
        functions = random_functions(15, rng)
        fast = lower_envelope(functions, 0.0, 10.0)
        slow = naive_lower_envelope(functions, 0.0, 10.0)
        assert envelopes_equal_pointwise(fast, slow)

    def test_envelope_covers_whole_window(self, rng):
        functions = random_functions(12, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        assert envelope.t_start == pytest.approx(0.0)
        assert envelope.t_end == pytest.approx(10.0)
        assert envelope.is_contiguous

    def test_envelope_piece_count_is_linear(self, rng):
        # Davenport–Schinzel λ₂(N) = 2N − 1 for curves crossing at most twice.
        functions = random_functions(25, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        assert len(envelope) <= 2 * len(functions) - 1

    def test_naive_handles_zero_length_window(self, rng):
        functions = random_functions(5, rng)
        envelope = naive_lower_envelope(functions, 3.0, 3.0)
        expected = min(functions, key=lambda f: f.value(3.0)).object_id
        assert envelope.owner_at(3.0) == expected

    def test_multisegment_functions(self, rng):
        # Functions whose trajectories have a breakpoint mid-window.
        from repro.geometry.envelope.hyperbola import Hyperbola, HyperbolaPiece

        def two_piece(object_id, d0, d1):
            first = Hyperbola.from_relative_motion(d0, 0.0, 0.0, 0.0, 0.0)
            second = Hyperbola.from_relative_motion(d1, 0.0, 0.0, 0.0, 5.0)
            return DistanceFunction(
                object_id,
                [HyperbolaPiece(0.0, 5.0, first), HyperbolaPiece(5.0, 10.0, second)],
            )

        functions = [two_piece("x", 1.0, 4.0), two_piece("y", 3.0, 2.0)]
        envelope = lower_envelope(functions, 0.0, 10.0)
        assert envelope.owner_at(2.0) == "x"
        assert envelope.owner_at(8.0) == "y"
        assert envelope_matches_pointwise_minimum(envelope, functions, 0.0, 10.0)

    def test_sampled_agreement_with_numpy_minimum(self, rng):
        functions = random_functions(10, rng)
        envelope = lower_envelope(functions, 0.0, 10.0)
        times = np.linspace(0.0, 10.0, 101)
        stacked = np.array([[f.value(float(t)) for t in times] for f in functions])
        minima = stacked.min(axis=0)
        values = np.array([envelope.value(float(t)) for t in times])
        np.testing.assert_allclose(values, minima, rtol=1e-9, atol=1e-9)
