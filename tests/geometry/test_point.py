"""Tests for 2D points and vectors."""

import math

import pytest

from repro.geometry.point import ORIGIN, Point2D, Vector2D, ZERO_VECTOR


class TestPoint2D:
    def test_as_tuple(self):
        assert Point2D(1.5, -2.0).as_tuple() == (1.5, -2.0)

    def test_iteration_yields_coordinates(self):
        assert list(Point2D(3.0, 4.0)) == [3.0, 4.0]

    def test_distance_to_is_euclidean(self):
        assert Point2D(0.0, 0.0).distance_to(Point2D(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point2D(1.0, 2.0), Point2D(-3.0, 7.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_squared_distance_matches_distance(self):
        a, b = Point2D(1.0, 2.0), Point2D(4.0, 6.0)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_subtraction_yields_vector(self):
        delta = Point2D(5.0, 7.0) - Point2D(2.0, 3.0)
        assert isinstance(delta, Vector2D)
        assert delta.as_tuple() == (3.0, 4.0)

    def test_translation_by_vector(self):
        assert (Point2D(1.0, 1.0) + Vector2D(2.0, -1.0)).as_tuple() == (3.0, 0.0)

    def test_midpoint(self):
        assert Point2D(0.0, 0.0).midpoint(Point2D(4.0, 6.0)).as_tuple() == (2.0, 3.0)

    def test_is_close_within_tolerance(self):
        assert Point2D(1.0, 1.0).is_close(Point2D(1.0 + 1e-12, 1.0 - 1e-12))

    def test_is_close_rejects_far_points(self):
        assert not Point2D(1.0, 1.0).is_close(Point2D(1.1, 1.0))

    def test_origin_constant(self):
        assert ORIGIN.as_tuple() == (0.0, 0.0)

    def test_points_are_hashable_value_objects(self):
        assert Point2D(1.0, 2.0) == Point2D(1.0, 2.0)
        assert len({Point2D(1.0, 2.0), Point2D(1.0, 2.0)}) == 1


class TestVector2D:
    def test_length(self):
        assert Vector2D(3.0, 4.0).length == pytest.approx(5.0)

    def test_squared_length(self):
        assert Vector2D(3.0, 4.0).squared_length == pytest.approx(25.0)

    def test_scaling(self):
        assert Vector2D(1.0, -2.0).scaled(3.0).as_tuple() == (3.0, -6.0)

    def test_multiplication_operators(self):
        assert (2.0 * Vector2D(1.0, 1.0)).as_tuple() == (2.0, 2.0)
        assert (Vector2D(1.0, 1.0) * 2.0).as_tuple() == (2.0, 2.0)

    def test_dot_product(self):
        assert Vector2D(1.0, 2.0).dot(Vector2D(3.0, 4.0)) == pytest.approx(11.0)

    def test_cross_product_sign(self):
        assert Vector2D(1.0, 0.0).cross(Vector2D(0.0, 1.0)) == pytest.approx(1.0)
        assert Vector2D(0.0, 1.0).cross(Vector2D(1.0, 0.0)) == pytest.approx(-1.0)

    def test_normalized_has_unit_length(self):
        assert Vector2D(3.0, 4.0).normalized().length == pytest.approx(1.0)

    def test_normalizing_zero_vector_raises(self):
        with pytest.raises(ValueError):
            ZERO_VECTOR.normalized()

    def test_rotation_quarter_turn(self):
        rotated = Vector2D(1.0, 0.0).rotated(math.pi / 2.0)
        assert rotated.dx == pytest.approx(0.0, abs=1e-12)
        assert rotated.dy == pytest.approx(1.0)

    def test_rotation_preserves_length(self):
        vector = Vector2D(2.0, -5.0)
        assert vector.rotated(1.234).length == pytest.approx(vector.length)

    def test_addition_and_subtraction(self):
        assert (Vector2D(1.0, 2.0) + Vector2D(3.0, 4.0)).as_tuple() == (4.0, 6.0)
        assert (Vector2D(1.0, 2.0) - Vector2D(3.0, 4.0)).as_tuple() == (-2.0, -2.0)

    def test_negation(self):
        assert (-Vector2D(1.0, -2.0)).as_tuple() == (-1.0, 2.0)

    def test_iteration_and_tuple(self):
        assert list(Vector2D(5.0, 6.0)) == [5.0, 6.0]
        assert Vector2D(5.0, 6.0).as_tuple() == (5.0, 6.0)
