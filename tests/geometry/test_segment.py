"""Tests for space-time segments and the squared-distance coefficients."""

import numpy as np
import pytest

from repro.geometry.point import Point2D
from repro.geometry.segment import (
    SpaceTimeSegment,
    euclidean_speed,
    segments_distance_squared_coefficients,
)


@pytest.fixture
def east_segment() -> SpaceTimeSegment:
    """Moves from (0,0) to (10,0) between t=0 and t=10 (speed 1)."""
    return SpaceTimeSegment(Point2D(0.0, 0.0), Point2D(10.0, 0.0), 0.0, 10.0)


class TestSegmentBasics:
    def test_reversed_time_rejected(self):
        with pytest.raises(ValueError):
            SpaceTimeSegment(Point2D(0, 0), Point2D(1, 1), 5.0, 4.0)

    def test_duration_and_length(self, east_segment):
        assert east_segment.duration == 10.0
        assert east_segment.length == pytest.approx(10.0)

    def test_velocity_and_speed(self, east_segment):
        assert east_segment.velocity.as_tuple() == pytest.approx((1.0, 0.0))
        assert east_segment.speed == pytest.approx(1.0)

    def test_zero_duration_segment_has_zero_velocity(self):
        still = SpaceTimeSegment(Point2D(1, 2), Point2D(1, 2), 3.0, 3.0)
        assert still.velocity.as_tuple() == (0.0, 0.0)

    def test_contains_time(self, east_segment):
        assert east_segment.contains_time(0.0)
        assert east_segment.contains_time(10.0)
        assert not east_segment.contains_time(10.5)


class TestInterpolation:
    def test_position_at_endpoints(self, east_segment):
        assert east_segment.position_at(0.0).as_tuple() == (0.0, 0.0)
        assert east_segment.position_at(10.0).as_tuple() == (10.0, 0.0)

    def test_position_at_midpoint(self, east_segment):
        assert east_segment.position_at(5.0).as_tuple() == pytest.approx((5.0, 0.0))

    def test_position_outside_raises(self, east_segment):
        with pytest.raises(ValueError):
            east_segment.position_at(11.0)

    def test_position_of_instantaneous_segment(self):
        still = SpaceTimeSegment(Point2D(1, 2), Point2D(1, 2), 3.0, 3.0)
        assert still.position_at(3.0).as_tuple() == (1.0, 2.0)


class TestClippingAndBounds:
    def test_clipped_interior_window(self, east_segment):
        clipped = east_segment.clipped(2.0, 4.0)
        assert clipped.t_start == 2.0
        assert clipped.t_end == 4.0
        assert clipped.start.as_tuple() == pytest.approx((2.0, 0.0))
        assert clipped.end.as_tuple() == pytest.approx((4.0, 0.0))

    def test_clipped_disjoint_window_raises(self, east_segment):
        with pytest.raises(ValueError):
            east_segment.clipped(11.0, 12.0)

    def test_spatial_bounds(self):
        segment = SpaceTimeSegment(Point2D(3, -1), Point2D(-2, 4), 0.0, 1.0)
        assert segment.spatial_bounds() == (-2, -1, 3, 4)

    def test_expanded_spatial_bounds(self, east_segment):
        assert east_segment.expanded_spatial_bounds(0.5) == (-0.5, -0.5, 10.5, 0.5)

    def test_reversed_swaps_endpoints_keeps_times(self, east_segment):
        reversed_segment = east_segment.reversed()
        assert reversed_segment.start == east_segment.end
        assert reversed_segment.end == east_segment.start
        assert reversed_segment.t_start == east_segment.t_start


class TestDistances:
    def test_min_distance_to_point_on_track(self, east_segment):
        assert east_segment.min_distance_to_point(Point2D(5.0, 0.0)) == pytest.approx(0.0)

    def test_min_distance_to_point_off_track(self, east_segment):
        assert east_segment.min_distance_to_point(Point2D(5.0, 3.0)) == pytest.approx(3.0)

    def test_min_distance_beyond_endpoint(self, east_segment):
        assert east_segment.min_distance_to_point(Point2D(13.0, 4.0)) == pytest.approx(5.0)

    def test_distance_at_common_time(self, east_segment):
        other = SpaceTimeSegment(Point2D(0.0, 3.0), Point2D(10.0, 3.0), 0.0, 10.0)
        assert east_segment.distance_at(other, 7.0) == pytest.approx(3.0)

    def test_time_overlap(self, east_segment):
        other = SpaceTimeSegment(Point2D(0, 0), Point2D(1, 1), 5.0, 15.0)
        assert east_segment.time_overlap(other) == (5.0, 10.0)

    def test_time_overlap_disjoint(self, east_segment):
        other = SpaceTimeSegment(Point2D(0, 0), Point2D(1, 1), 11.0, 15.0)
        assert east_segment.time_overlap(other) is None


class TestDistanceCoefficients:
    def test_coefficients_match_sampled_distances(self, east_segment):
        other = SpaceTimeSegment(Point2D(10.0, 5.0), Point2D(0.0, 5.0), 0.0, 10.0)
        a, b, c = segments_distance_squared_coefficients(other, east_segment)
        for t in np.linspace(0.0, 10.0, 21):
            expected = other.position_at(t).squared_distance_to(
                east_segment.position_at(t)
            )
            assert a * t * t + b * t + c == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_coefficients_with_offset_reference_time(self):
        first = SpaceTimeSegment(Point2D(0, 0), Point2D(5, 5), 2.0, 7.0)
        second = SpaceTimeSegment(Point2D(1, -1), Point2D(1, 9), 2.0, 7.0)
        a, b, c = segments_distance_squared_coefficients(first, second)
        for t in np.linspace(2.0, 7.0, 11):
            expected = first.position_at(t).squared_distance_to(second.position_at(t))
            assert a * t * t + b * t + c == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_disjoint_segments_raise(self, east_segment):
        other = SpaceTimeSegment(Point2D(0, 0), Point2D(1, 1), 20.0, 30.0)
        with pytest.raises(ValueError):
            segments_distance_squared_coefficients(east_segment, other)

    def test_euclidean_speed(self):
        assert euclidean_speed(0.0, 0.0, 3.0, 4.0, 5.0) == pytest.approx(1.0)

    def test_euclidean_speed_requires_positive_duration(self):
        with pytest.raises(ValueError):
            euclidean_speed(0.0, 0.0, 1.0, 1.0, 0.0)
