"""Tests for the disk (uncertainty zone) primitive."""

import math

import pytest

from repro.geometry.disk import Disk
from repro.geometry.point import Point2D


@pytest.fixture
def unit_disk() -> Disk:
    return Disk(Point2D(0.0, 0.0), 1.0)


class TestDiskBasics:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Disk(Point2D(0.0, 0.0), -0.1)

    def test_area(self, unit_disk):
        assert unit_disk.area == pytest.approx(math.pi)

    def test_contains_center_and_boundary(self, unit_disk):
        assert unit_disk.contains_point(Point2D(0.0, 0.0))
        assert unit_disk.contains_point(Point2D(1.0, 0.0))

    def test_does_not_contain_outside_point(self, unit_disk):
        assert not unit_disk.contains_point(Point2D(1.1, 0.0))

    def test_contains_disk(self, unit_disk):
        assert unit_disk.contains_disk(Disk(Point2D(0.2, 0.0), 0.5))
        assert not unit_disk.contains_disk(Disk(Point2D(0.8, 0.0), 0.5))

    def test_translated(self, unit_disk):
        moved = unit_disk.translated(2.0, 3.0)
        assert moved.center.as_tuple() == (2.0, 3.0)
        assert moved.radius == 1.0


class TestDiskDistances:
    def test_min_distance_to_outside_point(self, unit_disk):
        assert unit_disk.min_distance_to_point(Point2D(3.0, 0.0)) == pytest.approx(2.0)

    def test_min_distance_inside_point_is_zero(self, unit_disk):
        assert unit_disk.min_distance_to_point(Point2D(0.5, 0.0)) == 0.0

    def test_max_distance_to_point(self, unit_disk):
        assert unit_disk.max_distance_to_point(Point2D(3.0, 0.0)) == pytest.approx(4.0)

    def test_min_distance_between_disjoint_disks(self, unit_disk):
        other = Disk(Point2D(5.0, 0.0), 1.0)
        assert unit_disk.min_distance_to_disk(other) == pytest.approx(3.0)

    def test_min_distance_between_overlapping_disks_is_zero(self, unit_disk):
        other = Disk(Point2D(1.5, 0.0), 1.0)
        assert unit_disk.min_distance_to_disk(other) == 0.0

    def test_max_distance_between_disks(self, unit_disk):
        other = Disk(Point2D(5.0, 0.0), 2.0)
        assert unit_disk.max_distance_to_disk(other) == pytest.approx(8.0)


class TestDiskRelations:
    def test_intersects_overlapping(self, unit_disk):
        assert unit_disk.intersects(Disk(Point2D(1.5, 0.0), 1.0))

    def test_intersects_tangent(self, unit_disk):
        assert unit_disk.intersects(Disk(Point2D(2.0, 0.0), 1.0))

    def test_does_not_intersect_distant(self, unit_disk):
        assert not unit_disk.intersects(Disk(Point2D(2.5, 0.0), 1.0))

    def test_minkowski_sum_grows_radius(self, unit_disk):
        grown = unit_disk.minkowski_sum(2.5)
        assert grown.radius == pytest.approx(3.5)
        assert grown.center == unit_disk.center

    def test_minkowski_sum_negative_radius_rejected(self, unit_disk):
        with pytest.raises(ValueError):
            unit_disk.minkowski_sum(-1.0)
