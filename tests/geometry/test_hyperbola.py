"""Tests for hyperbolic distance functions and their piecewise containers."""

import math

import numpy as np
import pytest

from repro.geometry.envelope.hyperbola import (
    DistanceFunction,
    Hyperbola,
    HyperbolaPiece,
)


class TestHyperbola:
    def test_value_matches_relative_motion(self):
        # Object at (3, 4) at t=0 moving with velocity (1, 0) relative to the origin.
        curve = Hyperbola.from_relative_motion(3.0, 4.0, 1.0, 0.0, 0.0)
        for t in np.linspace(0.0, 5.0, 11):
            expected = math.hypot(3.0 + t, 4.0)
            assert curve.value(t) == pytest.approx(expected, rel=1e-12)

    def test_value_squared_clamps_negative_noise(self):
        curve = Hyperbola(1.0, 0.0, -1e-18)
        assert curve.value_squared(0.0) == 0.0

    def test_vertex_time_of_approaching_object(self):
        # Starts at (−5, 2) with velocity (1, 0): closest approach at t = 5.
        curve = Hyperbola.from_relative_motion(-5.0, 2.0, 1.0, 0.0, 0.0)
        assert curve.vertex_time == pytest.approx(5.0)

    def test_vertex_time_constant_distance_is_none(self):
        curve = Hyperbola.from_relative_motion(3.0, 4.0, 0.0, 0.0, 0.0)
        assert curve.vertex_time is None

    def test_minimum_inside_interval(self):
        curve = Hyperbola.from_relative_motion(-5.0, 2.0, 1.0, 0.0, 0.0)
        t_min, d_min = curve.minimum_on(0.0, 10.0)
        assert t_min == pytest.approx(5.0)
        assert d_min == pytest.approx(2.0)

    def test_minimum_at_interval_boundary(self):
        curve = Hyperbola.from_relative_motion(-5.0, 2.0, 1.0, 0.0, 0.0)
        t_min, d_min = curve.minimum_on(0.0, 3.0)
        assert t_min == pytest.approx(3.0)
        assert d_min == pytest.approx(math.hypot(2.0, 2.0))

    def test_maximum_on_interval(self):
        curve = Hyperbola.from_relative_motion(-5.0, 2.0, 1.0, 0.0, 0.0)
        t_max, d_max = curve.maximum_on(0.0, 10.0)
        assert t_max in (0.0, 10.0)
        assert d_max == pytest.approx(math.hypot(5.0, 2.0))

    def test_minimum_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Hyperbola(1.0, 0.0, 0.0).minimum_on(5.0, 4.0)

    def test_intersections_with_two_crossings(self):
        moving_away = Hyperbola.from_relative_motion(1.0, 0.0, 1.0, 0.0, 0.0)
        moving_closer = Hyperbola.from_relative_motion(9.0, 0.0, -1.0, 0.0, 0.0)
        crossings = moving_away.intersection_times(moving_closer, 0.0, 10.0)
        assert len(crossings) >= 1
        for t in crossings:
            assert moving_away.value(t) == pytest.approx(moving_closer.value(t), rel=1e-9)

    def test_parallel_functions_never_cross(self):
        a = Hyperbola.from_relative_motion(1.0, 0.0, 0.0, 0.0, 0.0)
        b = Hyperbola.from_relative_motion(2.0, 0.0, 0.0, 0.0, 0.0)
        assert a.intersection_times(b, 0.0, 10.0) == []

    def test_intersections_exclude_window_boundaries(self):
        a = Hyperbola.from_relative_motion(1.0, 0.0, 1.0, 0.0, 0.0)
        b = Hyperbola.from_relative_motion(9.0, 0.0, -1.0, 0.0, 0.0)
        all_crossings = a.intersection_times(b, 0.0, 10.0)
        if all_crossings:
            boundary = all_crossings[0]
            inside_only = a.intersection_times(b, boundary, 10.0)
            assert boundary not in inside_only

    def test_shifted_not_supported(self):
        with pytest.raises(NotImplementedError):
            Hyperbola(1.0, 0.0, 1.0).shifted(2.0)


class TestHyperbolaPiece:
    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            HyperbolaPiece(5.0, 4.0, Hyperbola(1.0, 0.0, 0.0))

    def test_contains(self):
        piece = HyperbolaPiece(0.0, 5.0, Hyperbola(1.0, 0.0, 0.0))
        assert piece.contains(2.5)
        assert not piece.contains(6.0)


class TestDistanceFunction:
    def make_two_piece(self) -> DistanceFunction:
        first = Hyperbola.from_relative_motion(5.0, 0.0, -1.0, 0.0, 0.0)
        second = Hyperbola.from_relative_motion(0.0, 0.0, 1.0, 0.0, 5.0)
        return DistanceFunction(
            "obj",
            [HyperbolaPiece(0.0, 5.0, first), HyperbolaPiece(5.0, 10.0, second)],
        )

    def test_requires_at_least_one_piece(self):
        with pytest.raises(ValueError):
            DistanceFunction("x", [])

    def test_rejects_overlapping_pieces(self):
        curve = Hyperbola(1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            DistanceFunction(
                "x",
                [HyperbolaPiece(0.0, 6.0, curve), HyperbolaPiece(5.0, 10.0, curve)],
            )

    def test_value_dispatches_to_correct_piece(self):
        function = self.make_two_piece()
        assert function.value(2.0) == pytest.approx(3.0)
        assert function.value(7.0) == pytest.approx(2.0)

    def test_piece_at_boundary_belongs_to_one_piece(self):
        function = self.make_two_piece()
        piece = function.piece_at(5.0)
        assert piece.contains(5.0)

    def test_value_outside_span_raises(self):
        function = self.make_two_piece()
        with pytest.raises(ValueError):
            function.value(11.0)

    def test_minimum_across_pieces(self):
        function = self.make_two_piece()
        t_min, d_min = function.minimum_on(0.0, 10.0)
        assert d_min == pytest.approx(0.0, abs=1e-9)
        assert t_min == pytest.approx(5.0)

    def test_maximum_across_pieces(self):
        function = self.make_two_piece()
        _, d_max = function.maximum_on(0.0, 10.0)
        assert d_max == pytest.approx(5.0)

    def test_breakpoints(self):
        function = self.make_two_piece()
        assert function.breakpoints(0.0, 10.0) == [5.0]
        assert function.breakpoints(6.0, 10.0) == []

    def test_intersection_times_against_constant(self):
        function = self.make_two_piece()
        constant = DistanceFunction.single_segment("c", 2.5, 0.0, 0.0, 0.0, 0.0, 10.0)
        crossings = function.intersection_times(constant, 0.0, 10.0)
        assert len(crossings) == 2
        for t in crossings:
            assert function.value(t) == pytest.approx(2.5, rel=1e-6)

    def test_single_segment_constructor(self):
        function = DistanceFunction.single_segment("s", 3.0, 4.0, 0.0, 0.0, 1.0, 9.0)
        assert function.object_id == "s"
        assert function.t_start == 1.0
        assert function.t_end == 9.0
        assert function.value(5.0) == pytest.approx(5.0)
