"""Tests for k-level envelopes."""

import numpy as np
import pytest

from repro.geometry.envelope.klevel import k_level_envelopes

from ..conftest import make_linear_function, random_functions


class TestKLevelEnvelopes:
    def test_level1_is_the_lower_envelope(self, crossing_functions):
        levels = k_level_envelopes(crossing_functions, 0.0, 10.0, max_levels=1)
        assert len(levels) == 1
        assert levels.level(1).owner_at(0.1) == "a"

    def test_level_values_are_sorted_at_every_time(self, rng):
        functions = random_functions(8, rng)
        levels = k_level_envelopes(functions, 0.0, 10.0, max_levels=4)
        for t in np.linspace(0.05, 9.95, 21):
            values = []
            for level_index in range(1, len(levels) + 1):
                try:
                    values.append(levels.level(level_index).value(float(t)))
                except ValueError:
                    continue
            assert values == sorted(values)

    def test_level_k_is_kth_order_statistic(self, rng):
        functions = random_functions(6, rng)
        levels = k_level_envelopes(functions, 0.0, 10.0, max_levels=3)
        for t in np.linspace(0.05, 9.95, 11):
            sorted_values = sorted(f.value(float(t)) for f in functions)
            for k in range(1, 4):
                assert levels.level(k).value(float(t)) == pytest.approx(
                    sorted_values[k - 1], rel=1e-6, abs=1e-9
                )

    def test_owners_at_are_distinct(self, rng):
        functions = random_functions(7, rng)
        levels = k_level_envelopes(functions, 0.0, 10.0, max_levels=4)
        owners = levels.owners_at(4.3)
        assert len(owners) == len(set(owners))

    def test_rank_of_owner(self, crossing_functions):
        levels = k_level_envelopes(crossing_functions, 0.0, 10.0, max_levels=3)
        owner = levels.level(1).owner_at(0.1)
        assert levels.rank_of(owner, 0.1) == 1

    def test_rank_of_absent_object(self, crossing_functions):
        levels = k_level_envelopes(crossing_functions, 0.0, 10.0, max_levels=2)
        assert levels.rank_of("no-such-object", 5.0) is None

    def test_number_of_levels_bounded_by_function_count(self, rng):
        functions = random_functions(4, rng)
        levels = k_level_envelopes(functions, 0.0, 10.0)
        assert len(levels) <= 4

    def test_requesting_too_deep_level_raises(self, crossing_functions):
        levels = k_level_envelopes(crossing_functions, 0.0, 10.0, max_levels=2)
        with pytest.raises(IndexError):
            levels.level(5)
        with pytest.raises(IndexError):
            levels.level(0)

    def test_duplicate_object_ids_rejected(self):
        duplicate = [
            make_linear_function("same", 1.0, 0.0, 0.0, 0.0),
            make_linear_function("same", 2.0, 0.0, 0.0, 0.0),
        ]
        with pytest.raises(ValueError):
            k_level_envelopes(duplicate, 0.0, 10.0)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            k_level_envelopes([], 0.0, 10.0)
