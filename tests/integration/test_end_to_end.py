"""Integration tests: full query pipeline cross-checked against ground truth."""

import numpy as np
import pytest

from repro.core.continuous import ContinuousProbabilisticNNQuery
from repro.core.ranking import monte_carlo_ranking, nn_probability_snapshot
from repro.trajectories.mod import MovingObjectsDatabase
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

from ..conftest import straight_trajectory


@pytest.fixture(scope="module")
def workload_mod() -> MovingObjectsDatabase:
    config = RandomWaypointConfig(num_objects=24, uncertainty_radius=0.5, seed=33)
    return MovingObjectsDatabase(generate_trajectories(config))


@pytest.fixture(scope="module")
def workload_query(workload_mod) -> ContinuousProbabilisticNNQuery:
    return ContinuousProbabilisticNNQuery(workload_mod, 0, 0.0, 60.0)


class TestPipelineConsistency:
    def test_envelope_owner_matches_true_nearest_candidate(self, workload_mod, workload_query):
        """At sampled times the rank-1 answer is the closest expected location."""
        query_trajectory = workload_mod.get(0)
        for t in np.linspace(1.0, 59.0, 7):
            ranking = workload_query.ranking_at(float(t), 1)
            distances = {
                trajectory.object_id: query_trajectory.position_at(float(t)).distance_to(
                    trajectory.position_at(float(t))
                )
                for trajectory in workload_mod
                if trajectory.object_id != 0
            }
            true_nearest = min(distances, key=distances.get)
            assert ranking[0] == true_nearest

    def test_tree_and_context_rankings_agree(self, workload_query):
        tree = workload_query.answer_tree(max_levels=3)
        for t in np.linspace(1.0, 59.0, 7):
            tree_ranking = tree.ranking_at(float(t))[:2]
            context_ranking = workload_query.ranking_at(float(t), 2)
            assert tree_ranking == context_ranking[: len(tree_ranking)]

    def test_survivors_cover_all_probability_bearing_objects(self, workload_mod, workload_query):
        """Objects with visible NN probability at sampled times must survive pruning."""
        survivors = set(workload_query.all_with_nonzero_probability_sometime())
        for t in np.linspace(5.0, 55.0, 4):
            snapshot = nn_probability_snapshot(workload_mod, 0, float(t), grid_size=128)
            for object_id, probability in snapshot.items():
                if probability > 1e-3:
                    assert object_id in survivors

    def test_rank1_sometime_objects_win_monte_carlo_somewhere(self, workload_mod, workload_query, rng):
        """Each rank-1 object is the Monte-Carlo favourite somewhere in its interval."""
        tree = workload_query.answer_tree(max_levels=1)
        for node in list(tree.walk())[:4]:
            midpoint = (node.t_start + node.t_end) / 2.0
            sampled = monte_carlo_ranking(workload_mod, 0, midpoint, samples=4000, rng=rng)
            assert sampled[0] == node.object_id


class TestHandCraftedGroundTruth:
    def test_crossing_scenario_answer_structure(self):
        """Two candidates exchange the NN role exactly once, mid-window."""
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
                straight_trajectory("early", (0.0, 1.0), (30.0, 12.0)),
                straight_trajectory("late", (0.0, 12.0), (30.0, 1.0)),
            ]
        )
        query = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)
        assert query.ranking_at(1.0, 1) == ["early"]
        assert query.ranking_at(59.0, 1) == ["late"]
        tree = query.answer_tree(max_levels=1)
        owners = [node.object_id for node in tree.nodes_at_level(1)]
        assert owners == ["early", "late"]

    def test_symmetric_candidates_share_the_window(self):
        """Symmetric parallel candidates each own rank-1 throughout at rank ≤ 2."""
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
                straight_trajectory("above", (0.0, 1.5), (30.0, 1.5)),
                straight_trajectory("below", (0.0, -1.5), (30.0, -1.5)),
            ]
        )
        query = ContinuousProbabilisticNNQuery(mod, "q", 0.0, 60.0)
        assert query.is_ranked_within_always("above", 2)
        assert query.is_ranked_within_always("below", 2)
        assert set(query.all_with_nonzero_probability_always()) == {"above", "below"}

    def test_fleet_scenario_end_to_end(self):
        from repro.workloads.scenarios import convoy_with_stragglers

        mod = convoy_with_stragglers(convoy_size=4, straggler_count=4)
        query = ContinuousProbabilisticNNQuery(mod, "convoy-1", 0.0, 60.0)
        neighbors = query.all_ranked_within_sometime(2)
        # The adjacent convoy members must be among the top-2 candidates.
        assert any(str(object_id).startswith("convoy-") for object_id in neighbors)
        tree = query.answer_tree(max_levels=2)
        assert tree.size() >= len(tree.nodes_at_level(1))
