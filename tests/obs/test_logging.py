"""Tests of the ``repro.*`` logger convention and configuration helper."""

from __future__ import annotations

import io
import logging

from repro.obs.logging import configure_logging, get_logger


def _fresh_root():
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    return logger


def test_get_logger_prefixes_repro_namespace():
    assert get_logger("parallel.worker").name == "repro.parallel.worker"
    assert get_logger("repro.engine").name == "repro.engine"
    assert get_logger().name == "repro"


def test_configure_logging_is_idempotent():
    root = _fresh_root()
    try:
        first = configure_logging(stream=io.StringIO())
        second = configure_logging(stream=io.StringIO())
        assert first is second
        handlers = [
            handler for handler in root.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(handlers) == 1
    finally:
        _fresh_root()


def test_configured_logger_emits_to_stream():
    _fresh_root()
    try:
        stream = io.StringIO()
        configure_logging(level="DEBUG", stream=stream)
        get_logger("trajectories.shared").debug("exported %d segment(s)", 2)
        output = stream.getvalue()
        assert "repro.trajectories.shared" in output
        assert "exported 2 segment(s)" in output
        assert "DEBUG" in output
    finally:
        _fresh_root()


def test_level_filters_below_threshold():
    _fresh_root()
    try:
        stream = io.StringIO()
        configure_logging(level="WARNING", stream=stream)
        get_logger("engine").info("quiet")
        get_logger("engine").warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output
        assert "loud" in output
    finally:
        _fresh_root()
