"""Cross-layer span trees: worker stitching and monitor instrumentation."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import capture, disable_tracing
from repro.parallel import ShardedEngine
from repro.streaming.monitor import ContinuousMonitor
from repro.workloads.scenarios import multi_query_fleet


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def fleet():
    return multi_query_fleet(num_vehicles=24, num_queries=4, seed=11)


class TestProcessBackendStitching:
    def test_single_stitched_tree_with_consistent_durations(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        with ShardedEngine(
            mod, num_shards=2, backend="process", mp_start_method="spawn"
        ) as engine:
            engine.warm_up()
            with capture() as recorder:
                engine.answer_batch(query_ids, lo, hi)
            assert len(recorder) == 1, "expected exactly one stitched root"
            root = recorder.latest()
            assert root.name == "sharded.answer_batch"
            dispatch = root.find("sharded.dispatch")
            assert dispatch is not None
            assert dispatch.attrs["backend"] == "process"
            workers = [
                span for span in root.walk() if span.name == "shard.worker"
            ]
            assert workers, "worker spans did not cross the process boundary"
            for worker in workers:
                assert worker.find("shard.evaluate") is not None
            # Leaf work is a subset of the root's wall clock.
            leaves = [span for span in root.walk() if not span.children]
            assert all(span.duration is not None for span in leaves)
            assert sum(span.duration for span in leaves) <= root.duration

    def test_thread_backend_adopts_local_spans(self, fleet):
        mod, query_ids = fleet
        lo, hi = mod.common_time_span()
        with ShardedEngine(mod, num_shards=2, backend="thread") as engine:
            with capture() as recorder:
                engine.answer_batch(query_ids, lo, hi)
            root = recorder.latest()
            assert root.find("shard.local") is not None
            assert root.find("shard.worker") is None


class TestMonitorSpans:
    def test_apply_produces_one_tree_and_metrics(self, fleet):
        mod, query_ids = fleet
        monitor = ContinuousMonitor(mod, registry=MetricsRegistry())
        monitor.register(query_ids[0], sliding=5.0)
        with capture() as recorder:
            report = monitor.apply()
        root = recorder.latest()
        assert root.name == "monitor.apply"
        assert root.find("monitor.upsert") is not None
        assert root.find("monitor.evaluate") is not None
        assert root.attrs["affected"] == len(report.affected_queries)
        snapshot = monitor.registry.snapshot()
        assert snapshot["repro_monitor_batches_total"]["value"] == 1.0
        assert snapshot["repro_monitor_apply_seconds"]["count"] == 1
        assert snapshot["repro_monitor_evaluations_total"]["value"] >= 1.0
