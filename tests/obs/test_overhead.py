"""Perf-gated guard: disabled tracing must stay within the overhead budget.

Skipped unless ``REPRO_PERF_TESTS`` is set — timing assertions are too
machine-sensitive for the default suite.  CI enforces the same bound
through ``benchmarks/bench_obs.py`` + ``baselines/obs.json`` instead.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import QueryEngine
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import disable_tracing
from repro.workloads.scenarios import multi_query_fleet

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_PERF_TESTS"),
    reason="timing-sensitive; set REPRO_PERF_TESTS=1 to run",
)

#: Allowed warm-path regression of disabled tracing + live registry, percent.
OVERHEAD_LIMIT_PCT = 2.0


def _warm_batch_seconds(engine, query_ids, lo, hi, repeats=200):
    engine.prepare_batch(query_ids, lo, hi)  # warm the context cache
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(repeats):
            engine.prepare_batch(query_ids, lo, hi)
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_tracing_overhead_under_budget():
    disable_tracing()
    mod, query_ids = multi_query_fleet(num_vehicles=40, num_queries=8, seed=3)
    lo, hi = mod.common_time_span()

    null_engine = QueryEngine(mod, registry=NULL_REGISTRY)
    live_engine = QueryEngine(mod, registry=MetricsRegistry())
    # Interleave so ambient machine drift hits both variants equally.
    baseline = _warm_batch_seconds(null_engine, query_ids, lo, hi)
    instrumented = _warm_batch_seconds(live_engine, query_ids, lo, hi)
    baseline = min(baseline, _warm_batch_seconds(null_engine, query_ids, lo, hi))
    instrumented = min(
        instrumented, _warm_batch_seconds(live_engine, query_ids, lo, hi)
    )

    overhead_pct = (instrumented - baseline) / baseline * 100.0
    assert overhead_pct < OVERHEAD_LIMIT_PCT, (
        f"warm prepare_batch regressed {overhead_pct:.2f}% "
        f"(budget {OVERHEAD_LIMIT_PCT}%)"
    )
