"""Unit tests of the metrics registry and its instruments."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0

    def test_to_dict(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.to_dict() == {"type": "counter", "value": 2.0}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(9)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_empty(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.mean == 0.0
        assert histogram.p50 == 0.0

    def test_counts_and_sum(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.5)
        buckets = histogram.to_dict()["buckets"]
        assert buckets == {"1.0": 1, "2.0": 2, "4.0": 1, "+Inf": 1}

    def test_exact_boundary_lands_in_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.to_dict()["buckets"]["1.0"] == 1

    def test_quantile_interpolates_within_bucket(self):
        histogram = Histogram("h", bounds=(0.0, 10.0))
        for _ in range(100):
            histogram.observe(5.0)
        # All mass in the (0, 10] bucket: the median interpolates to its middle.
        assert histogram.p50 == pytest.approx(5.0)

    def test_quantile_overflow_returns_last_bound(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(50.0)
        assert histogram.p99 == 2.0

    def test_quantile_monotone(self):
        histogram = Histogram("h")
        for value in (0.0002, 0.003, 0.04, 0.5, 6.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)

    def test_quantile_out_of_range_raises(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_reset(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.sum == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second
        assert len(registry) == 1

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        single = registry.counter("requests_total", backend="single")
        sharded = registry.counter("requests_total", backend="sharded")
        assert single is not sharded
        single.inc(3)
        assert registry.get("requests_total", backend="single").value == 3.0
        assert registry.get("requests_total", backend="sharded").value == 0.0
        assert registry.get("requests_total") is None

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=DEFAULT_SIZE_BUCKETS)

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(0.01)
        registry.reset()
        assert registry.get("c").value == 0.0
        assert registry.get("g").value == 0.0
        assert registry.get("h").count == 0

    def test_snapshot_keys_carry_labels(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", backend="single").inc()
        snapshot = registry.snapshot()
        assert snapshot['requests_total{backend="single"}']["value"] == 1.0

    def test_render_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(0.005)
        parsed = json.loads(registry.render_json(indent=2))
        assert parsed["c"]["value"] == 2.0
        assert parsed["h"]["count"] == 1


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("req_total", help="Requests").inc(4)
        registry.gauge("depth").set(2)
        text = registry.render_prometheus()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 4.0" in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.0" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="2.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11.0" in text
        assert "lat_count 3" in text

    def test_type_header_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("req_total", backend="single")
        registry.counter("req_total", backend="sharded")
        text = registry.render_prometheus()
        assert text.count("# TYPE req_total counter") == 1

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestNullRegistry:
    def test_instruments_do_nothing(self):
        counter = NULL_REGISTRY.counter("c")
        counter.inc(100)
        assert counter.value == 0.0
        histogram = NULL_REGISTRY.histogram("h", buckets=DEFAULT_SIZE_BUCKETS)
        histogram.observe(5)
        assert histogram.count == 0
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.snapshot() == {}

    def test_help_positional_matches_real_registry(self):
        # Both registries must accept (name, help) positionally so call
        # sites can swap NULL_REGISTRY in for overhead measurement.
        NULL_REGISTRY.counter("c", "help text")
        MetricsRegistry().counter("c", "help text")


def test_default_registry_is_process_global():
    assert default_registry() is default_registry()
