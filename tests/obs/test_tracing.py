"""Unit tests of structured tracing: spans, stitching, and the no-op path."""

from __future__ import annotations

import threading

import pytest

from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    SpanRecorder,
    capture,
    current_span,
    detached_span,
    disable_tracing,
    enable_tracing,
    enabled,
    record,
    render_tree,
    span_context,
    trace_span,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing globally off."""
    disable_tracing()
    yield
    disable_tracing()


class TestNoopPath:
    def test_disabled_returns_singleton(self):
        assert trace_span("x") is NOOP_SPAN
        assert detached_span("x") is NOOP_SPAN
        assert current_span() is NOOP_SPAN
        assert span_context() is None

    def test_noop_span_is_inert(self):
        with trace_span("x", a=1) as span:
            span.set("k", "v")
            span.adopt(None)
        assert span is NOOP_SPAN
        assert span.find("x") is None
        assert list(span.walk()) == []


class TestSpans:
    def test_nesting_and_recording(self):
        recorder = enable_tracing(SpanRecorder())
        with trace_span("root", kind="test") as root:
            with trace_span("child") as child:
                with trace_span("grandchild"):
                    pass
        assert root.children == [child]
        assert len(child.children) == 1
        assert root.duration is not None
        assert child.duration <= root.duration
        assert recorder.spans() == [root]

    def test_only_roots_are_recorded(self):
        recorder = enable_tracing(SpanRecorder())
        with trace_span("root"):
            with trace_span("child"):
                pass
        assert len(recorder) == 1
        assert recorder.latest().name == "root"

    def test_exception_tags_error_and_unwinds_stack(self):
        enable_tracing(SpanRecorder())
        with pytest.raises(RuntimeError):
            with trace_span("root") as root:
                with trace_span("child") as child:
                    raise RuntimeError("boom")
        assert child.attrs["error"] == "RuntimeError"
        assert root.attrs["error"] == "RuntimeError"
        assert current_span() is NOOP_SPAN  # stack fully unwound

    def test_detached_span_nests_children_but_never_attaches(self):
        recorder = enable_tracing(SpanRecorder())
        with trace_span("root") as root:
            with detached_span("off-tree") as detached:
                with trace_span("inner") as inner:
                    pass
        assert detached not in root.children
        assert inner in detached.children
        assert recorder.spans() == [root]  # detached spans never auto-record
        root.adopt(detached)
        assert detached in root.children

    def test_record_pushes_detached_roots(self):
        recorder = enable_tracing(SpanRecorder())
        with detached_span("worker") as span:
            pass
        record(span)
        assert recorder.latest() is span

    def test_adopt_ignores_none_and_noop(self):
        span = Span("root")
        span.adopt(None)
        span.adopt(NOOP_SPAN)
        assert span.children == []

    def test_span_context_carries_current_span(self):
        enable_tracing(SpanRecorder())
        with trace_span("outer"):
            name, _started = span_context()
            assert name == "outer"

    def test_walk_and_find(self):
        with capture():
            with trace_span("a") as a:
                with trace_span("b"):
                    with trace_span("c"):
                        pass
        assert [span.name for span in a.walk()] == ["a", "b", "c"]
        assert a.find("c").name == "c"
        assert a.find("missing") is None


class TestSerialization:
    def test_round_trip_preserves_shape_and_relative_offsets(self):
        with capture():
            with trace_span("root", shard=1) as root:
                with trace_span("child", stage="kernel"):
                    pass
        payload = root.to_dict()
        rebuilt = Span.from_dict(payload)
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"shard": 1}
        assert rebuilt.duration == pytest.approx(root.duration)
        (child,) = rebuilt.children
        assert child.name == "child"
        assert child.attrs == {"stage": "kernel"}
        # Relative child offset survives re-basing onto a new clock.
        original_offset = root.children[0].started - root.started
        assert child.started - rebuilt.started == pytest.approx(original_offset)

    def test_rebuilt_tree_is_detached(self):
        with capture() as recorder:
            with trace_span("root"):
                pass
            payload = recorder.latest().to_dict()
            with Span.from_dict(payload):
                pass
            # Exiting the rebuilt (detached) root must not re-record it.
            assert len(recorder) == 1


class TestRecorder:
    def test_ring_buffer_evicts_oldest(self):
        recorder = SpanRecorder(capacity=2)
        for index in range(4):
            recorder.push(Span(f"s{index}"))
        assert [span.name for span in recorder.spans()] == ["s2", "s3"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_clear(self):
        recorder = SpanRecorder()
        recorder.push(Span("s"))
        recorder.clear()
        assert recorder.latest() is None
        assert len(recorder) == 0


class TestCapture:
    def test_capture_restores_global_state(self):
        assert not enabled()
        with capture() as recorder:
            assert enabled()
            with trace_span("inside"):
                pass
        assert not enabled()
        assert recorder.latest().name == "inside"

    def test_capture_isolates_thread_stack(self):
        enable_tracing(SpanRecorder())
        with trace_span("outer"):
            with capture() as inner_recorder:
                assert current_span() is NOOP_SPAN  # fresh stack inside
                with trace_span("inner"):
                    pass
            assert current_span().name == "outer"  # stack restored
        assert inner_recorder.latest().name == "inner"


def test_spans_on_other_threads_record_independently():
    recorder = enable_tracing(SpanRecorder())
    try:
        def work():
            with trace_span("thread-root"):
                pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        with trace_span("main-root"):
            pass
        names = sorted(span.name for span in recorder.spans())
        assert names == ["main-root", "thread-root"]
    finally:
        disable_tracing()


def test_render_tree_shows_timings_and_attrs():
    with capture():
        with trace_span("root", queries=3) as root:
            with trace_span("child"):
                pass
    text = render_tree(root)
    lines = text.splitlines()
    assert lines[0].startswith("root")
    assert "[queries=3]" in lines[0]
    assert lines[1].startswith("  child")
    assert "ms" in lines[0]
