"""Crash-injection and restore-equality tests for the durable tier.

The central oracle: after any crash the driver can inject (torn WAL tail,
half-written snapshot, garbage suffix), ``restore()`` must hand back a MOD
whose revision, changelog, and UQ31/32/33 answers are byte-identical to
the pre-crash original — that is what lets every revision-keyed layer
above resume as if the process never died.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import QueryEngine
from repro.persistence import (
    PersistenceError,
    PersistentStore,
    restore,
    snapshots_path,
    wal_path,
)
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories


def fleet_mod(num=12, seed=7):
    config = RandomWaypointConfig(
        num_objects=num, segments_per_trajectory=2, seed=seed
    )
    return MovingObjectsDatabase(generate_trajectories(config))


def trajectory_like(object_id, rng, radius=0.5):
    waypoints = []
    x, y = rng.uniform(0, 40, size=2)
    for t in (0.0, 30.0, 60.0):
        waypoints.append((float(x), float(y), t))
        x += rng.uniform(-5, 5)
        y += rng.uniform(-5, 5)
    return UncertainTrajectory(object_id, waypoints, radius)


def uq3x_answers(mod, query_id):
    """UQ31/32/33 answers over the common span, straight off a QueryEngine."""
    lo, hi = mod.common_time_span()
    engine = QueryEngine(mod)
    return {
        "UQ31": engine.answer(query_id, lo, hi, variant="sometime"),
        "UQ32": engine.answer(query_id, lo, hi, variant="always"),
        "UQ33": engine.answer(query_id, lo, hi, variant="fraction", fraction=0.25),
    }


def assert_identical(restored, original):
    assert restored.revision == original.revision
    assert restored.object_ids == original.object_ids
    assert restored.changelog_records() == original.changelog_records()
    for object_id in original.object_ids:
        assert restored.object_revision(object_id) == original.object_revision(
            object_id
        )
        a, b = restored.get(object_id), original.get(object_id)
        assert [(s.x, s.y, s.t) for s in a.samples] == [
            (s.x, s.y, s.t) for s in b.samples
        ]
        assert a.radius == b.radius


class TestKillMidWrite:
    """The acceptance-criteria scenario: crash during an unsynced write."""

    def test_recovery_after_torn_final_frame(self, tmp_path):
        rng = np.random.default_rng(3)
        mod = fleet_mod()
        store = PersistentStore(tmp_path, mod, fsync="batch")
        query_id = mod.object_ids[0]
        # A running session: checkpoint mid-stream, then more mutations.
        mod.replace_trajectory(trajectory_like(mod.object_ids[1], rng))
        store.checkpoint()
        victim = mod.object_ids[2]
        removed = mod.remove(victim)
        mod.add(removed)
        mod.replace_trajectory(trajectory_like(mod.object_ids[3], rng))
        store.flush()
        pre_crash_answers = uq3x_answers(mod, query_id)
        # The crash: the process dies while appending one more frame — the
        # tail of the WAL is garbage, nothing was closed cleanly.
        with open(wal_path(tmp_path), "ab") as handle:
            handle.write(b"\x40\x00\x00\x00half-a-frame-then-power-loss")
        result = restore(tmp_path)
        assert result.dropped_bytes > 0
        assert result.replayed_frames == 3
        assert_identical(result.mod, mod)
        assert uq3x_answers(result.mod, query_id) == pre_crash_answers

    def test_recovery_after_half_written_snapshot(self, tmp_path):
        rng = np.random.default_rng(4)
        mod = fleet_mod()
        store = PersistentStore(tmp_path, mod, fsync="batch")
        mod.replace_trajectory(trajectory_like(mod.object_ids[0], rng))
        store.checkpoint()
        good = store.snapshotter.latest()
        mod.replace_trajectory(trajectory_like(mod.object_ids[1], rng))
        store.flush()
        answers = uq3x_answers(mod, mod.object_ids[2])
        # The crash: a later checkpoint died before publishing its
        # manifest; only an unrenamed tmp directory exists.
        half = snapshots_path(tmp_path) / ".tmp-000000000099-1234"
        half.mkdir()
        (half / "columns.f64").write_bytes(b"\x00" * 64)
        result = restore(tmp_path)
        assert result.snapshot.revision == good.revision
        assert result.replayed_frames == 1
        assert_identical(result.mod, mod)
        assert uq3x_answers(result.mod, mod.object_ids[2]) == answers

    def test_wal_only_recovery_without_any_snapshot(self, tmp_path):
        mod = MovingObjectsDatabase()
        store = PersistentStore(tmp_path, mod, fsync="batch")
        rng = np.random.default_rng(5)
        for i in range(6):
            mod.add(trajectory_like(f"obj-{i}", rng))
        mod.remove("obj-4")
        store.flush()
        result = restore(tmp_path)
        assert result.snapshot is None
        assert result.replayed_frames == 7
        assert_identical(result.mod, mod)


class TestRestoreEdges:
    def test_empty_directory_restores_empty_store(self, tmp_path):
        result = restore(tmp_path / "fresh")
        assert result.mod.revision == 0 and len(result.mod) == 0
        assert result.snapshot is None and result.replayed_frames == 0

    def test_disconnected_wal_is_an_error(self, tmp_path):
        mod = fleet_mod(num=4)
        store = PersistentStore(tmp_path, mod)
        store.checkpoint()
        rng = np.random.default_rng(6)
        mod.replace_trajectory(trajectory_like(mod.object_ids[0], rng))
        store.close()
        # Delete the snapshot the WAL tail connects to: the remaining older
        # history cannot meet the log.
        snapshot = store.snapshotter.latest()
        import shutil

        shutil.rmtree(snapshot.path)
        with pytest.raises(PersistenceError, match="does not connect"):
            restore(tmp_path)

    def test_attaching_a_mismatched_store_is_rejected(self, tmp_path):
        mod = fleet_mod(num=4)
        PersistentStore(tmp_path, mod).close(checkpoint=True)
        stranger = fleet_mod(num=3, seed=99)
        with pytest.raises(PersistenceError, match="tip"):
            PersistentStore(tmp_path, stranger)

    def test_restored_store_keeps_persisting(self, tmp_path):
        """restore → attach → mutate → restore again reaches the new tip."""
        mod = fleet_mod(num=5)
        PersistentStore(tmp_path, mod).close(checkpoint=True)
        rng = np.random.default_rng(8)
        first = restore(tmp_path)
        store = PersistentStore(tmp_path, first.mod)
        first.mod.replace_trajectory(trajectory_like(first.mod.object_ids[0], rng))
        store.close()
        second = restore(tmp_path)
        assert_identical(second.mod, first.mod)

    def test_shared_memory_export_from_restored_mod(self, tmp_path):
        """A restored MOD's shared-column export equals the original's.

        The export reads the restored store's columnar pack, whose
        per-object arrays are snapshot-mmap views — so worker processes
        seed straight from the mapped pages.
        """
        shared_memory = pytest.importorskip("multiprocessing.shared_memory")
        del shared_memory
        from repro.trajectories.shared import SharedColumnarStore, attach_pack

        mod = fleet_mod(num=6)
        PersistentStore(tmp_path, mod).close(checkpoint=True)
        restored = restore(tmp_path).mod
        with SharedColumnarStore(restored) as shared:
            attached = attach_pack(shared.descriptor())
            try:
                original = mod.columnar().pack()
                for object_id in mod.object_ids:
                    ts, xs, ys = attached.columns(object_id)
                    ots, oxs, oys = mod.columnar().columns(object_id)
                    assert np.array_equal(ts, ots)
                    assert np.array_equal(xs, oxs)
                    assert np.array_equal(ys, oys)
                assert attached.ids == original.ids
            finally:
                attached.close()


# ----------------------------------------------------------------------
# The restore-equality property.
# ----------------------------------------------------------------------

_ids = st.sampled_from(["alpha", "beta", "gamma", "delta"])
_ops = st.lists(
    st.tuples(st.sampled_from(["upsert", "remove", "replace"]), _ids, st.integers(0, 9)),
    min_size=1,
    max_size=24,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(operations=_ops, checkpoint_after=st.integers(0, 24))
def test_restore_equality_property(tmp_path_factory, operations, checkpoint_after):
    """Any mutation sequence → snapshot + WAL replay == the live store.

    A checkpoint lands at an arbitrary point of the sequence, so the
    restore exercises every split between "folded into the snapshot" and
    "replayed from the log" — including all-snapshot and all-log.
    """
    data_dir = tmp_path_factory.mktemp("prop")
    mod = MovingObjectsDatabase()
    store = PersistentStore(data_dir, mod, fsync="never")
    rng = np.random.default_rng(42)
    for step, (op, object_id, salt) in enumerate(operations):
        replacement = trajectory_like(object_id, rng, radius=0.5 + 0.05 * salt)
        if op == "upsert":
            mod.upsert(replacement)
        elif op == "replace" and object_id in mod:
            mod.replace_trajectory(replacement)
        elif op == "remove" and object_id in mod:
            mod.remove(object_id)
        if step == checkpoint_after:
            store.checkpoint()
    store.flush()
    result = restore(data_dir)
    assert_identical(result.mod, mod)
    if len(mod) >= 2:
        try:
            mod.common_time_span()
        except ValueError:
            return
        query_id = mod.object_ids[0]
        assert uq3x_answers(result.mod, query_id) == uq3x_answers(mod, query_id)


class TestConcurrentCheckpoints:
    def test_parallel_checkpoints_against_a_live_writer(self, tmp_path):
        # A manual checkpoint racing the background checkpoint loop (two
        # executor threads) while a monitor thread streams mutations:
        # checkpoints serialize on the store's lock, snapshot capture is
        # revision-consistent, and nothing acknowledged is ever lost.
        import threading
        import time

        rng = np.random.default_rng(11)
        mod = fleet_mod(num=6)
        store = PersistentStore(tmp_path, mod, fsync="never")
        stop = threading.Event()
        errors = []

        def mutate():
            for _ in range(60):
                mod.replace_trajectory(trajectory_like(0, rng))
                time.sleep(0.001)  # a realistic ingest pause between fixes
            stop.set()

        def checkpoint_loop():
            try:
                while not stop.is_set():
                    store.checkpoint()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=mutate)] + [
            threading.Thread(target=checkpoint_loop) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        store.close(checkpoint=True)
        result = restore(tmp_path)
        assert_identical(result.mod, mod)
