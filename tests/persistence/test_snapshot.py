"""Snapshot tests: round trip, atomicity, corruption handling, retention."""

import json
import shutil

import numpy as np
import pytest

from repro.persistence.snapshot import (
    COLUMNS_NAME,
    HEADER_NAME,
    MANIFEST_NAME,
    SnapshotCorruption,
    Snapshotter,
    load_snapshot,
    read_snapshot_info,
)
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import TruncatedGaussianPDF


def make_mod():
    mod = MovingObjectsDatabase(
        [
            UncertainTrajectory("a", [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)], 0.5),
            UncertainTrajectory(
                "b",
                [(5.0, 5.0, 0.0), (5.0, -5.0, 10.0)],
                0.75,
                TruncatedGaussianPDF(0.75, 0.3),
            ),
            UncertainTrajectory(
                "c", [(1.0, 2.0, 0.0), (3.0, 4.0, 5.0), (9.0, 9.0, 10.0)], 0.5
            ),
        ]
    )
    mod.replace_trajectory(
        UncertainTrajectory("a", [(0.0, 0.0, 0.0), (12.0, 1.0, 10.0)], 0.5)
    )
    return mod


def assert_mods_equal(left, right):
    assert left.revision == right.revision
    assert left.object_ids == right.object_ids
    assert left.changelog_records() == right.changelog_records()
    for object_id in left.object_ids:
        assert left.object_revision(object_id) == right.object_revision(object_id)
        a, b = left.get(object_id), right.get(object_id)
        assert [(s.x, s.y, s.t) for s in a.samples] == [
            (s.x, s.y, s.t) for s in b.samples
        ]
        assert a.radius == b.radius
        assert type(a.pdf) is type(b.pdf)
        assert a.pdf.support_radius == b.pdf.support_radius


class TestRoundTrip:
    def test_snapshot_restores_exact_state(self, tmp_path):
        mod = make_mod()
        info = Snapshotter(tmp_path).write(mod)
        assert info.revision == mod.revision
        assert info.objects == 3
        restored = load_snapshot(info.path).build_mod()
        assert_mods_equal(restored, mod)
        # The Gaussian pdf's parameter survives the (family, sigma) spec.
        assert restored.get("b").pdf.sigma == mod.get("b").pdf.sigma

    def test_restored_columns_are_mmap_backed_and_identical(self, tmp_path):
        mod = make_mod()
        info = Snapshotter(tmp_path).write(mod)
        snapshot = load_snapshot(info.path)
        restored = snapshot.build_mod()
        pack = restored.columnar().pack()
        original = mod.columnar().pack()
        assert pack.ids == original.ids
        assert np.array_equal(pack.ts, original.ts)
        assert np.array_equal(pack.xs, original.xs)
        assert np.array_equal(pack.ys, original.ys)
        assert np.array_equal(pack.radii, original.radii)
        # The per-object columns really are views into the mapped file,
        # not re-extracted sample tuples.
        ts, xs, ys = restored.columnar().columns("a")
        assert isinstance(snapshot._raw, np.memmap)
        assert np.shares_memory(ts, snapshot._raw)
        snap_ts, _, _ = snapshot.columns("a")
        assert np.shares_memory(ts, snap_ts)

    def test_empty_mod_round_trips(self, tmp_path):
        mod = MovingObjectsDatabase()
        info = Snapshotter(tmp_path).write(mod)
        restored = load_snapshot(info.path).build_mod()
        assert restored.revision == 0 and len(restored) == 0

    def test_rewriting_same_revision_is_idempotent(self, tmp_path):
        mod = make_mod()
        snapshotter = Snapshotter(tmp_path)
        first = snapshotter.write(mod)
        second = snapshotter.write(mod)
        assert first == second
        assert len(snapshotter.list_snapshots()) == 1


class TestCorruption:
    def _snapshot(self, tmp_path):
        mod = make_mod()
        return Snapshotter(tmp_path), Snapshotter(tmp_path).write(mod)

    def test_half_written_snapshot_without_manifest_is_invisible(self, tmp_path):
        snapshotter, info = self._snapshot(tmp_path)
        # Simulate a crash mid-write: a second snapshot directory with data
        # files but no manifest (the manifest is written last).
        half = tmp_path / "snapshot-000000000099"
        half.mkdir()
        shutil.copy(info.path / COLUMNS_NAME, half / COLUMNS_NAME)
        shutil.copy(info.path / HEADER_NAME, half / HEADER_NAME)
        assert [s.revision for s in snapshotter.list_snapshots()] == [info.revision]
        assert snapshotter.latest().revision == info.revision
        with pytest.raises(SnapshotCorruption, match="MANIFEST"):
            read_snapshot_info(half)

    def test_tmp_directories_are_never_listed_and_get_swept(self, tmp_path):
        snapshotter, info = self._snapshot(tmp_path)
        orphan = tmp_path / ".tmp-000000000042-9999"
        orphan.mkdir()
        (orphan / COLUMNS_NAME).write_bytes(b"partial")
        assert len(snapshotter.list_snapshots()) == 1
        snapshotter.prune()
        assert not orphan.exists()
        assert info.path.exists()

    def test_truncated_columns_file_fails_layout_check(self, tmp_path):
        snapshotter, info = self._snapshot(tmp_path)
        columns = info.path / COLUMNS_NAME
        columns.write_bytes(columns.read_bytes()[:-8])
        with pytest.raises(SnapshotCorruption, match="bytes on disk"):
            read_snapshot_info(info.path)
        assert snapshotter.latest() is None

    def test_bit_flip_caught_by_checksum_verification(self, tmp_path):
        _, info = self._snapshot(tmp_path)
        columns = info.path / COLUMNS_NAME
        data = bytearray(columns.read_bytes())
        data[17] ^= 0x01
        columns.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruption, match="checksum"):
            load_snapshot(info.path)
        load_snapshot(info.path, verify=False)  # explicit opt-out loads

    def test_manifest_garbage_is_rejected(self, tmp_path):
        _, info = self._snapshot(tmp_path)
        (info.path / MANIFEST_NAME).write_text(json.dumps({"format": "nope"}))
        with pytest.raises(SnapshotCorruption, match="manifest"):
            read_snapshot_info(info.path)


class TestRetention:
    def test_prune_keeps_the_newest_snapshots(self, tmp_path):
        mod = make_mod()
        snapshotter = Snapshotter(tmp_path, retain=2)
        revisions = []
        for i in range(4):
            mod.replace_trajectory(mod.get("a"))
            revisions.append(snapshotter.write(mod).revision)
            snapshotter.prune()
        kept = [s.revision for s in snapshotter.list_snapshots()]
        assert kept == revisions[-2:]

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="retain"):
            Snapshotter(tmp_path, retain=0)


class TestInvalidFinalDirectory:
    def test_write_replaces_an_invalid_snapshot_directory(self, tmp_path):
        # A corrupt (non-empty, manifest-less) directory squatting on the
        # final name must not wedge every checkpoint at that revision with
        # ENOTEMPTY from os.replace.
        mod = make_mod()
        snapshotter = Snapshotter(tmp_path)
        final = tmp_path / f"snapshot-{mod.revision:012d}"
        final.mkdir(parents=True)
        (final / "junk.bin").write_bytes(b"not a snapshot")
        info = snapshotter.write(mod)
        assert info.revision == mod.revision
        assert not (final / "junk.bin").exists()
        assert_mods_equal(load_snapshot(info.path).build_mod(), mod)


class TestConcurrentCapture:
    def test_mutation_mid_capture_retries_to_a_consistent_snapshot(
        self, tmp_path
    ):
        # A mutation landing between the column-pack build and the
        # bookkeeping reads must not publish a manifest revision whose
        # data is missing from the columns; write() re-checks the
        # monotonic revision and recaptures.
        mod = make_mod()
        snapshotter = Snapshotter(tmp_path)
        original = mod.changelog_records
        calls = {"n": 0}

        def mutate_once_then_delegate():
            calls["n"] += 1
            if calls["n"] == 1:
                mod.replace_trajectory(
                    UncertainTrajectory(
                        "a", [(2.0, 2.0, 0.0), (8.0, 8.0, 10.0)], 0.5
                    )
                )
            return original()

        mod.changelog_records = mutate_once_then_delegate
        info = snapshotter.write(mod)
        del mod.changelog_records
        assert calls["n"] >= 2  # the first capture was torn and retried
        assert info.revision == mod.revision
        assert_mods_equal(load_snapshot(info.path).build_mod(), mod)

    def test_unstable_store_raises_instead_of_tearing(self, tmp_path):
        # If every capture attempt is torn, write() must fail loudly (the
        # WAL still has every mutation; the next checkpoint retries)
        # rather than truncate-away an uncaptured frame downstream.
        from repro.persistence.snapshot import SnapshotError

        mod = make_mod()
        snapshotter = Snapshotter(tmp_path)
        original = mod.changelog_records

        def always_mutate():
            mod.replace_trajectory(mod.get("a"))
            return original()

        mod.changelog_records = always_mutate
        with pytest.raises(SnapshotError, match="no stable view"):
            snapshotter.write(mod)
        del mod.changelog_records


class _EvilHeader:
    """Pickles to a REDUCE of ``os.mkdir(marker)``."""

    def __init__(self, marker):
        self.marker = marker

    def __reduce__(self):
        import os

        return (os.mkdir, (self.marker,))


class TestTrustBoundary:
    def test_tampered_header_is_rejected_not_executed(self, tmp_path):
        import os
        import pickle

        _, info = (
            Snapshotter(tmp_path),
            Snapshotter(tmp_path).write(make_mod()),
        )
        marker = str(tmp_path / "pwned")
        evil = pickle.dumps(_EvilHeader(marker))
        (info.path / HEADER_NAME).write_bytes(evil)
        # A tampering adversary can recompute sizes and checksums, so fix
        # the manifest up to match: the unpickler itself is the last line
        # of defense.
        manifest_path = info.path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["files"][HEADER_NAME]["bytes"] = len(evil)
        import zlib

        manifest["files"][HEADER_NAME]["crc32"] = zlib.crc32(evil)
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotCorruption, match="refusing to unpickle"):
            load_snapshot(info.path, verify=False)
        assert not os.path.exists(marker)
