"""Write-ahead log tests: framing, torn tails, repair, truncation."""

import os

import pytest

from repro.persistence.wal import (
    FSYNC_POLICIES,
    WAL_MAGIC,
    WalCorruption,
    WalError,
    WriteAheadLog,
    scan_wal,
)
from repro.trajectories.mod import ChangeRecord, MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory


def make_trajectory(object_id, offset=0.0, radius=0.5):
    return UncertainTrajectory(
        object_id,
        [(offset, 0.0, 0.0), (offset + 10.0, 5.0, 10.0)],
        radius,
    )


def assert_frames_equal(left, right):
    """Frame-list equality by value (trajectories compare by identity)."""
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.record == b.record
        if a.trajectory is None or b.trajectory is None:
            assert a.trajectory is None and b.trajectory is None
        else:
            assert [(s.x, s.y, s.t) for s in a.trajectory.samples] == [
                (s.x, s.y, s.t) for s in b.trajectory.samples
            ]
            assert a.trajectory.radius == b.trajectory.radius


def append_mutations(wal, count=3):
    """Append add/replace/remove frames for ``count`` objects via a MOD."""
    mod = MovingObjectsDatabase()
    mod.subscribe_changes(wal.append)
    for i in range(count):
        mod.add(make_trajectory(f"obj-{i}", offset=float(i)))
    mod.replace_trajectory(make_trajectory("obj-0", offset=100.0))
    mod.remove("obj-1")
    return mod


class TestFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            mod = append_mutations(wal)
        scan = scan_wal(path)
        assert scan.dropped_bytes == 0
        assert [f.record for f in scan.frames] == mod.changelog_records()
        assert scan.last_revision == mod.revision
        # Payload trajectories round-trip exactly.
        replaced = next(f for f in scan.frames if f.record.kind == "replace")
        original = mod.get("obj-0")
        assert [(s.x, s.y, s.t) for s in replaced.trajectory.samples] == [
            (s.x, s.y, s.t) for s in original.samples
        ]
        removed = next(f for f in scan.frames if f.record.kind == "remove")
        assert removed.trajectory is None

    def test_empty_log_scans_empty(self, tmp_path):
        path = tmp_path / "log.wal"
        WriteAheadLog(path).close()
        scan = scan_wal(path)
        assert scan.frames == () and scan.last_revision == 0

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.wal")
        assert scan.frames == () and scan.valid_bytes == 0

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "not-a.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(WalCorruption, match="bad magic"):
            scan_wal(path)

    def test_revision_order_enforced_on_append(self, tmp_path):
        with WriteAheadLog(tmp_path / "log.wal") as wal:
            wal.append(ChangeRecord(1, "add", "a"), make_trajectory("a"))
            with pytest.raises(ValueError, match="does not extend"):
                wal.append(ChangeRecord(1, "add", "b"), make_trajectory("b"))

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.close()
        assert wal.closed
        with pytest.raises(WalError, match="closed"):
            wal.append(ChangeRecord(1, "add", "a"), make_trajectory("a"))

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path / "log.wal", fsync="sometimes")

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_every_policy_round_trips(self, tmp_path, policy):
        path = tmp_path / f"{policy}.wal"
        with WriteAheadLog(path, fsync=policy) as wal:
            mod = append_mutations(wal)
            wal.flush()
        assert scan_wal(path).last_revision == mod.revision


class TestTornTail:
    def _clean_log(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            append_mutations(wal)
        return path, scan_wal(path)

    def test_truncated_mid_frame_drops_only_the_tail(self, tmp_path):
        path, clean = self._clean_log(tmp_path)
        # Cut the file a few bytes into the final frame.
        torn_at = clean.valid_bytes - 5
        data = path.read_bytes()
        path.write_bytes(data[:torn_at])
        scan = scan_wal(path)
        assert_frames_equal(scan.frames, clean.frames[:-1])
        assert scan.dropped_bytes > 0

    def test_corrupted_final_payload_drops_only_the_tail(self, tmp_path):
        path, clean = self._clean_log(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one bit in the last payload byte
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert_frames_equal(scan.frames, clean.frames[:-1])
        assert scan.dropped_bytes > 0

    def test_garbage_suffix_is_dropped(self, tmp_path):
        path, clean = self._clean_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef-garbage")
        scan = scan_wal(path)
        assert_frames_equal(scan.frames, clean.frames)
        assert scan.dropped_bytes == 12

    def test_strict_scan_raises_on_torn_tail(self, tmp_path):
        path, _ = self._clean_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"torn")
        with pytest.raises(WalCorruption, match="tail"):
            scan_wal(path, strict=True)
        scan_wal(path)  # tolerant mode still succeeds

    def test_mid_file_corruption_hides_later_frames(self, tmp_path):
        # Damage in the *middle* invalidates everything after it — the
        # scanner must not resynchronize onto garbage.
        path, clean = self._clean_log(tmp_path)
        first_end = len(WAL_MAGIC) + 4  # header size
        data = bytearray(path.read_bytes())
        data[first_end + 20] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert len(scan.frames) == 0
        assert scan.dropped_bytes == len(data) - first_end

    def test_reopen_repairs_torn_tail_and_appends_cleanly(self, tmp_path):
        path, clean = self._clean_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02torn-tail")
        wal = WriteAheadLog(path)  # repair happens on open
        assert os.path.getsize(path) == clean.valid_bytes
        assert wal.last_revision == clean.last_revision
        record = ChangeRecord(clean.last_revision + 1, "add", "fresh")
        wal.append(record, make_trajectory("fresh"))
        wal.close()
        scan = scan_wal(path)
        assert scan.dropped_bytes == 0
        assert scan.frames[-1].record == record


class TestTruncation:
    def test_truncate_through_drops_old_frames(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            mod = append_mutations(wal)
            cut = mod.revision - 2
            dropped = wal.truncate_through(cut)
            assert dropped == cut
            assert wal.frame_count == 2
            # The log keeps accepting appends after the rewrite.
            mod.add(make_trajectory("late", offset=50.0))
        scan = scan_wal(path)
        assert [f.record.revision for f in scan.frames] == [
            mod.revision - 2,
            mod.revision - 1,
            mod.revision,
        ]

    def test_truncate_everything_leaves_valid_empty_log(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            mod = append_mutations(wal)
            wal.truncate_through(mod.revision)
            assert wal.frame_count == 0
        assert scan_wal(path).frames == ()

    def test_truncate_noop_when_nothing_qualifies(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            append_mutations(wal)
            assert wal.truncate_through(0) == 0


class TestCreationRepair:
    """A crash during initial creation must not leave a headerless log."""

    def test_zero_byte_file_gets_a_header_on_reopen(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(b"")  # creation crashed before the header landed
        with WriteAheadLog(path) as wal:
            wal.append(ChangeRecord(1, "add", "a"), make_trajectory("a"))
        assert path.read_bytes()[: len(WAL_MAGIC)] == WAL_MAGIC
        scan = scan_wal(path)
        assert scan.dropped_bytes == 0
        assert scan.last_revision == 1

    def test_partial_header_is_rewritten_on_reopen(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(WAL_MAGIC[:5])  # creation crashed mid-header
        with WriteAheadLog(path) as wal:
            wal.append(ChangeRecord(1, "add", "a"), make_trajectory("a"))
            wal.append(ChangeRecord(2, "remove", "a"))
        scan = scan_wal(path)
        assert scan.dropped_bytes == 0
        assert [f.record.revision for f in scan.frames] == [1, 2]


class _EvilPayload:
    """Pickles to a REDUCE of ``os.mkdir(marker)`` — running it on load
    would create the marker directory."""

    def __init__(self, marker):
        self.marker = marker

    def __reduce__(self):
        return (os.mkdir, (self.marker,))


class TestTrustBoundary:
    def test_global_bearing_payload_is_rejected_not_executed(self, tmp_path):
        import pickle
        import struct
        import zlib

        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            append_mutations(wal)
        clean = scan_wal(path)
        marker = str(tmp_path / "pwned")
        payload = pickle.dumps(
            {
                "record": (clean.last_revision + 1, "add", "evil", None),
                "boom": _EvilPayload(marker),
            }
        )
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", len(payload), zlib.crc32(payload)))
            handle.write(payload)
        scan = scan_wal(path)  # valid CRC, but the payload is not plain data
        assert not os.path.exists(marker)
        assert_frames_equal(scan.frames, clean.frames)
        assert scan.dropped_bytes > 0
        with pytest.raises(WalCorruption, match="decode failure"):
            scan_wal(path, strict=True)
