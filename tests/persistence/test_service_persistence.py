"""QueryService durable-tier wiring: warm restart, checkpoints, lifecycle."""

import asyncio

import pytest

from repro.persistence import restore, scan_wal, snapshots_path, wal_path
from repro.service import QueryRequest, QueryService
from repro.workloads.scenarios import multi_query_fleet


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture
def fleet():
    return multi_query_fleet(num_vehicles=16, num_queries=3)


class TestWarmRestart:
    def test_service_answers_survive_a_restart(self, tmp_path, fleet):
        mod, monitored = fleet
        lo, hi = mod.common_time_span()

        async def first_life():
            async with QueryService(mod, data_dir=tmp_path) as service:
                return [
                    (await service.query(q, lo, hi)).answer for q in monitored
                ]

        async def second_life():
            async with QueryService(data_dir=tmp_path) as service:
                assert service.restore_result is not None
                assert service.mod.revision == mod.revision
                return [
                    (await service.query(q, lo, hi)).answer for q in monitored
                ]

        before = run(first_life())
        after = run(second_life())
        assert before == after

    def test_stop_checkpoints_so_restart_replays_nothing(self, tmp_path, fleet):
        mod, _ = fleet

        async def life():
            async with QueryService(mod, data_dir=tmp_path):
                mod.replace_trajectory(mod.get(mod.object_ids[0]))

        run(life())
        assert scan_wal(wal_path(tmp_path)).frames == ()
        result = restore(tmp_path)
        assert result.replayed_frames == 0
        assert result.mod.revision == mod.revision

    def test_mutations_while_serving_are_logged_synchronously(
        self, tmp_path, fleet
    ):
        mod, monitored = fleet
        lo, hi = mod.common_time_span()

        async def life():
            async with QueryService(mod, data_dir=tmp_path) as service:
                await service.query(monitored[0], lo, hi)
                mod.replace_trajectory(mod.get(mod.object_ids[0]))
                # Logged before the mutating call returned — visible in the
                # WAL right now, well before any checkpoint.
                service.persistence.flush()
                scan = scan_wal(wal_path(tmp_path))
                assert scan.last_revision == mod.revision
                await service.query(monitored[0], lo, hi)

        run(life())

    def test_requires_mod_or_data_dir(self):
        with pytest.raises(ValueError, match="data_dir"):
            QueryService()

    def test_no_data_dir_means_no_durable_tier(self, fleet):
        mod, _ = fleet
        service = QueryService(mod)
        assert service.persistence is None and service.restore_result is None


class TestCheckpoints:
    def test_background_checkpoint_truncates_the_wal(self, tmp_path, fleet):
        mod, _ = fleet

        async def life():
            async with QueryService(
                mod, data_dir=tmp_path, snapshot_interval=0.05
            ) as service:
                mod.replace_trajectory(mod.get(mod.object_ids[0]))
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if service.persistence.wal.frame_count == 0:
                        break
                assert service.persistence.wal.frame_count == 0
                assert service.persistence.snapshotter.latest().revision == (
                    mod.revision
                )

        run(life())

    def test_manual_checkpoint_and_metrics(self, tmp_path, fleet):
        mod, _ = fleet

        async def life():
            async with QueryService(mod, data_dir=tmp_path) as service:
                mod.replace_trajectory(mod.get(mod.object_ids[0]))
                info = await service.checkpoint()
                assert info.revision == mod.revision
                snapshot = service.metrics_snapshot()
                assert (
                    snapshot["repro_persistence_wal_appends_total"]["value"] >= 1
                )
                assert (
                    snapshot["repro_persistence_snapshots_total"]["value"] >= 1
                )
                assert (
                    snapshot["repro_persistence_checkpoints_total"]["value"] >= 1
                )

        run(life())

    def test_checkpoint_without_data_dir_raises(self, fleet):
        mod, _ = fleet

        async def life():
            async with QueryService(mod) as service:
                with pytest.raises(Exception, match="durable tier"):
                    await service.checkpoint()

        run(life())

    def test_snapshot_retention_is_forwarded(self, tmp_path, fleet):
        mod, _ = fleet

        async def life():
            async with QueryService(
                mod, data_dir=tmp_path, snapshot_retain=1
            ) as service:
                for _ in range(3):
                    mod.replace_trajectory(mod.get(mod.object_ids[0]))
                    await service.checkpoint()

        run(life())
        listed = [
            entry
            for entry in snapshots_path(tmp_path).iterdir()
            if entry.name.startswith("snapshot-")
        ]
        assert len(listed) == 1


class TestLifecycle:
    def test_stop_start_reattaches_the_durable_tier(self, tmp_path, fleet):
        mod, _ = fleet

        async def life():
            service = QueryService(mod, data_dir=tmp_path)
            await service.start()
            await service.stop()
            assert service.persistence.closed
            await service.start()
            assert not service.persistence.closed
            mod.replace_trajectory(mod.get(mod.object_ids[0]))
            await service.stop()

        run(life())
        assert restore(tmp_path).mod.revision == mod.revision

    def test_invalid_snapshot_interval_rejected(self, tmp_path, fleet):
        mod, _ = fleet
        with pytest.raises(ValueError, match="snapshot_interval"):
            QueryService(mod, data_dir=tmp_path, snapshot_interval=0.0)
