"""Tests for the plain-text table renderer."""

import pytest

from repro.experiments.report import format_table


class TestFormatTable:
    def test_simple_table(self):
        table = format_table(["a", "b"], [(1, 2), (3, 4)])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "1" in lines[2] and "4" in lines[3]

    def test_title_rendering(self):
        table = format_table(["col"], [(1,)], title="My Title")
        lines = table.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_float_formatting(self):
        table = format_table(["x"], [(0.12345678,), (1.5e-7,), (12345.0,), (0.0,)])
        assert "0.1235" in table
        assert "e-07" in table
        assert "e+04" in table or "1.234e+04" in table
        assert "\n0" in table  # zero renders plainly

    def test_column_alignment(self):
        table = format_table(["name", "value"], [("long-name-here", 1), ("x", 22)])
        lines = table.splitlines()
        # All data rows have the same separator position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])
