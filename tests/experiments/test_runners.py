"""Tests for the figure runners and ablations (tiny configurations)."""

import pytest

from repro.experiments.ablations import (
    index_ablation_table,
    ranking_ablation_table,
    run_index_ablation,
    run_ranking_ablation,
    run_segments_ablation,
    segments_ablation_table,
)
from repro.experiments.config import Figure11Config, Figure12Config, Figure13Config
from repro.experiments.fig11 import figure11_table, run_figure11
from repro.experiments.fig12 import figure12_table, run_figure12
from repro.experiments.fig13 import figure13_table, run_figure13


class TestFigure11:
    def test_rows_and_speedup_shape(self):
        config = Figure11Config(object_counts=[20, 60])
        rows = run_figure11(config)
        assert [row.num_objects for row in rows] == [20, 60]
        # The divide-and-conquer construction must beat the naive one, and
        # the gap must widen as N grows (the qualitative claim of Figure 11).
        assert all(row.speedup > 1.0 for row in rows)
        assert rows[1].speedup > rows[0].speedup

    def test_table_rendering(self):
        rows = run_figure11(Figure11Config(object_counts=[15]))
        table = figure11_table(rows)
        assert "Figure 11" in table
        assert "15" in table

    def test_paper_config_counts(self):
        assert Figure11Config.paper().object_counts[-1] == 12000


class TestFigure12:
    def test_rows_and_speedup_shape(self):
        config = Figure12Config(object_counts=[20, 60], queries_per_count=3)
        rows = run_figure12(config)
        assert [row.num_objects for row in rows] == [20, 60]
        assert all(row.existential_speedup > 1.0 for row in rows)
        assert all(row.quantitative_speedup > 1.0 for row in rows)
        assert rows[1].existential_speedup > rows[0].existential_speedup

    def test_table_rendering(self):
        rows = run_figure12(Figure12Config(object_counts=[15], queries_per_count=2))
        table = figure12_table(rows)
        assert "Figure 12" in table

    def test_paper_config(self):
        paper = Figure12Config.paper()
        assert paper.queries_per_count == 100
        assert paper.quantitative_fraction == 0.5


class TestFigure13:
    def test_integration_fraction_grows_with_radius(self):
        config = Figure13Config(
            radii_miles=[0.1, 1.0, 2.0], object_counts=[150], queries_per_setting=2
        )
        rows = run_figure13(config)
        fractions = [row.integration_fraction for row in rows]
        assert len(fractions) == 3
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
        assert fractions[0] < fractions[-1]

    def test_small_radius_prunes_most_objects(self):
        config = Figure13Config(
            radii_miles=[0.25], object_counts=[300], queries_per_setting=3
        )
        rows = run_figure13(config)
        assert rows[0].pruned_fraction > 0.75

    def test_table_rendering(self):
        rows = run_figure13(
            Figure13Config(radii_miles=[0.5], object_counts=[60], queries_per_setting=1)
        )
        table = figure13_table(rows)
        assert "Figure 13" in table

    def test_paper_config_populations(self):
        assert Figure13Config.paper().object_counts == [2000, 10000]


class TestAblations:
    def test_ranking_ablation_agrees(self):
        rows = run_ranking_ablation(object_counts=[10], pdf_families=["uniform"], top_k=2)
        assert len(rows) == 1
        assert rows[0].agrees
        assert "Theorem 1" in ranking_ablation_table(rows)

    def test_segments_ablation_shape(self):
        rows = run_segments_ablation(num_objects=30, segment_counts=[1, 2])
        assert [row.segments_per_trajectory for row in rows] == [1, 2]
        assert all(row.envelope_pieces >= 1 for row in rows)
        assert "segments" in segments_ablation_table(rows)

    def test_index_ablation_shape(self):
        rows = run_index_ablation(object_counts=[50], corridor_miles=5.0)
        assert len(rows) == 2  # grid and rtree
        grid_row, rtree_row = rows
        assert grid_row.candidates_after_filter == rtree_row.candidates_after_filter
        assert 0.0 <= grid_row.filter_ratio <= 1.0
        assert "index" in index_ablation_table(rows)
