"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# Seeded (derandomized) hypothesis profiles: the ``ci`` profile keeps the
# property suites fast and reproducible on every push; the ``nightly``
# profile (selected by HYPOTHESIS_PROFILE=nightly, see
# .github/workflows/bench-trend.yml) spends two orders of magnitude more
# examples hunting for adversarial inputs to the differential kernels.
settings.register_profile("ci", max_examples=25, deadline=None, derandomize=True)
settings.register_profile(
    "nightly", max_examples=400, deadline=None, derandomize=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro.geometry.envelope.hyperbola import DistanceFunction
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory
from repro.uncertainty.uniform import UniformDiskPDF
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


def make_linear_function(
    object_id: object,
    x0: float,
    y0: float,
    vx: float,
    vy: float,
    t_lo: float = 0.0,
    t_hi: float = 10.0,
) -> DistanceFunction:
    """Distance function of a single relative motion (test helper)."""
    return DistanceFunction.single_segment(object_id, x0, y0, vx, vy, t_lo, t_hi)


@pytest.fixture
def crossing_functions() -> list[DistanceFunction]:
    """Three relative motions whose distance functions cross inside [0, 10].

    Object "a" starts near the origin and drifts away, "b" starts far and
    approaches, "c" stays at an intermediate constant distance — a small
    scenario with a known envelope structure.
    """
    return [
        make_linear_function("a", 1.0, 0.0, 0.8, 0.0),
        make_linear_function("b", 9.0, 0.0, -0.8, 0.0),
        make_linear_function("c", 0.0, 5.0, 0.0, 0.0),
    ]


def random_functions(
    count: int, rng: np.random.Generator, t_lo: float = 0.0, t_hi: float = 10.0
) -> list[DistanceFunction]:
    """Random single-segment distance functions (test helper)."""
    functions = []
    for index in range(count):
        x0, y0 = rng.uniform(-20.0, 20.0, 2)
        vx, vy = rng.uniform(-2.0, 2.0, 2)
        functions.append(
            make_linear_function(f"obj-{index}", x0, y0, vx, vy, t_lo, t_hi)
        )
    return functions


def straight_trajectory(
    object_id: object,
    start: tuple[float, float],
    end: tuple[float, float],
    t_lo: float = 0.0,
    t_hi: float = 60.0,
    radius: float = 0.5,
) -> UncertainTrajectory:
    """A single-segment uncertain trajectory (test helper)."""
    return UncertainTrajectory(
        object_id,
        [(start[0], start[1], t_lo), (end[0], end[1], t_hi)],
        radius,
        UniformDiskPDF(radius),
    )


@pytest.fixture
def small_mod() -> MovingObjectsDatabase:
    """A 16-object random-waypoint MOD over 60 minutes."""
    config = RandomWaypointConfig(num_objects=16, uncertainty_radius=0.5, seed=21)
    return MovingObjectsDatabase(generate_trajectories(config))


@pytest.fixture
def tiny_mod() -> MovingObjectsDatabase:
    """A hand-built four-object MOD with a known NN structure.

    The query object ``"q"`` moves east along y = 0.  Object ``"near"`` runs
    parallel 2 miles north (always nearest), ``"crossing"`` crosses the
    query's path mid-window (nearest around the crossing), and ``"far"``
    stays 30 miles away (never relevant).
    """
    trajectories = [
        straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
        straight_trajectory("near", (0.0, 2.0), (30.0, 2.0)),
        straight_trajectory("crossing", (15.0, -20.0), (15.0, 20.0)),
        straight_trajectory("far", (0.0, 30.0), (30.0, 30.0)),
    ]
    return MovingObjectsDatabase(trajectories)
