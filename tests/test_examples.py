"""Every example script must run green on a small scenario.

The examples are the documented entry points (`README.md` and `docs/` link
into them), so CI executes each one as a subprocess with ``REPRO_SMOKE=1``
— the scaled-down scenario switch in ``examples/_support.py`` — to keep
them from silently rotting as the API evolves.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(
    name
    for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py") and not name.startswith("_")
)


def test_every_example_is_covered():
    """A new example file is automatically picked up by the runner below."""
    assert EXAMPLES, "examples/ must contain example scripts"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_green(example):
    environment = dict(os.environ)
    environment["REPRO_SMOKE"] = "1"
    environment["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), environment.get("PYTHONPATH")])
    )
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True,
        text=True,
        timeout=300,
        env=environment,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{example} failed\n--- stdout ---\n{completed.stdout[-2000:]}"
        f"\n--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{example} printed nothing"
