"""Tests for the interpolation/resampling helpers."""

import numpy as np
import pytest

from repro.trajectories.interpolation import (
    pairwise_expected_distances,
    positions_at,
    resample,
    sampled_polyline,
    uniform_time_grid,
)
from repro.trajectories.trajectory import Trajectory, UncertainTrajectory

from ..conftest import straight_trajectory


class TestInterpolationHelpers:
    def test_positions_at(self):
        trajectory = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0), t_hi=10.0)
        positions = positions_at(trajectory, [0.0, 5.0, 10.0])
        assert [p.as_tuple() for p in positions] == [
            pytest.approx((0.0, 0.0)),
            pytest.approx((5.0, 0.0)),
            pytest.approx((10.0, 0.0)),
        ]

    def test_resample_preserves_geometry(self):
        trajectory = Trajectory("a", [(0, 0, 0.0), (10, 0, 10.0), (10, 10, 20.0)])
        resampled = resample(trajectory, [0.0, 5.0, 10.0, 15.0, 20.0])
        for t in np.linspace(0.0, 20.0, 21):
            assert resampled.position_at(float(t)).distance_to(
                trajectory.position_at(float(t))
            ) == pytest.approx(0.0, abs=1e-9)

    def test_resample_preserves_uncertainty_metadata(self):
        trajectory = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0), radius=0.7)
        resampled = resample(trajectory, [0.0, 30.0, 60.0])
        assert isinstance(resampled, UncertainTrajectory)
        assert resampled.radius == pytest.approx(0.7)

    def test_resample_validation(self):
        trajectory = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0))
        with pytest.raises(ValueError):
            resample(trajectory, [0.0])
        with pytest.raises(ValueError):
            resample(trajectory, [10.0, 5.0])

    def test_uniform_time_grid(self):
        grid = uniform_time_grid(0.0, 10.0, 5)
        np.testing.assert_allclose(grid, [0.0, 2.5, 5.0, 7.5, 10.0])
        with pytest.raises(ValueError):
            uniform_time_grid(0.0, 10.0, 1)
        with pytest.raises(ValueError):
            uniform_time_grid(10.0, 0.0, 3)

    def test_pairwise_expected_distances(self):
        first = straight_trajectory("a", (0.0, 0.0), (10.0, 0.0), t_hi=10.0)
        second = straight_trajectory("b", (0.0, 4.0), (10.0, 4.0), t_hi=10.0)
        distances = pairwise_expected_distances(first, second, [0.0, 5.0, 10.0])
        np.testing.assert_allclose(distances, [4.0, 4.0, 4.0])

    def test_sampled_polyline(self):
        trajectory = Trajectory("a", [(0, 1, 2.0), (3, 4, 5.0)])
        xs, ys, ts = sampled_polyline(trajectory)
        np.testing.assert_allclose(xs, [0.0, 3.0])
        np.testing.assert_allclose(ys, [1.0, 4.0])
        np.testing.assert_allclose(ts, [2.0, 5.0])
