"""Edge cases of the Section 2.1 update-stream converters."""

import math

import pytest

from repro.trajectories.updates import (
    LocationUpdate,
    VelocityUpdate,
    dead_reckoning_positions,
    ellipse_uncertainty_bound,
    trajectory_from_dead_reckoning,
    trajectory_from_updates,
)


class TestSingleUpdateStreams:
    def test_single_location_update_cannot_form_a_trajectory(self):
        with pytest.raises(ValueError, match="at least two"):
            trajectory_from_updates("v", [LocationUpdate(0.0, 0.0, 0.0)], 1.0)

    def test_empty_location_stream_raises(self):
        with pytest.raises(ValueError, match="at least two"):
            trajectory_from_updates("v", [], 1.0)

    def test_single_dead_reckoning_update_extrapolates(self):
        trajectory = trajectory_from_dead_reckoning(
            "v", [VelocityUpdate(1.0, 2.0, 0.0, 0.5, -0.5)], d_max=0.2, end_time=4.0
        )
        assert trajectory.start_time == 0.0
        assert trajectory.end_time == 4.0
        end = trajectory.position_at(4.0)
        assert end.x == pytest.approx(1.0 + 0.5 * 4.0)
        assert end.y == pytest.approx(2.0 - 0.5 * 4.0)
        assert trajectory.radius == pytest.approx(0.2)

    def test_empty_dead_reckoning_stream_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            trajectory_from_dead_reckoning("v", [], d_max=0.2)


class TestZeroDeltaT:
    def test_zero_gap_between_location_reports_raises(self):
        updates = [
            LocationUpdate(0.0, 0.0, 0.0),
            LocationUpdate(1.0, 0.0, 5.0),
            LocationUpdate(1.5, 0.0, 5.0),
        ]
        with pytest.raises(ValueError, match="time-ordered"):
            trajectory_from_updates("v", updates, max_speed=1.0)

    def test_ellipse_bound_rejects_zero_interval(self):
        first = LocationUpdate(0.0, 0.0, 1.0)
        second = LocationUpdate(0.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="time-ordered"):
            ellipse_uncertainty_bound(first, second, max_speed=1.0, t=1.0)

    def test_dead_reckoning_duplicate_time_keeps_reported_location(self):
        # Two reports at the same time: the converter's deduplication keeps
        # the corrected (reported) location rather than a zero-length leg.
        updates = [
            VelocityUpdate(0.0, 0.0, 0.0, 1.0, 0.0),
            VelocityUpdate(2.0, 0.0, 2.0, 1.0, 0.0),
        ]
        trajectory = trajectory_from_dead_reckoning("v", updates, 0.5, end_time=3.0)
        times = [sample.t for sample in trajectory.samples]
        assert times == sorted(times)
        assert len(times) == len(set(times)), "duplicate timestamps must collapse"


class TestDeadReckoningWithinContract:
    """A stream whose motion never violates ``D_max``: one report suffices."""

    def test_compliant_stream_matches_extrapolation_everywhere(self):
        # The object moves exactly as dead-reckoned, so later reports land
        # on the extrapolated track and the polyline is a single straight
        # motion with radius D_max.
        updates = [
            VelocityUpdate(0.0, 0.0, 0.0, 1.0, 2.0),
            VelocityUpdate(1.0, 2.0, 1.0, 1.0, 2.0),
            VelocityUpdate(3.0, 6.0, 3.0, 1.0, 2.0),
        ]
        trajectory = trajectory_from_dead_reckoning("v", updates, 0.4, end_time=5.0)
        for t in [0.0, 0.5, 1.0, 2.0, 3.0, 4.5, 5.0]:
            position = trajectory.position_at(t)
            assert position.x == pytest.approx(t, abs=1e-9)
            assert position.y == pytest.approx(2.0 * t, abs=1e-9)
        assert trajectory.radius == pytest.approx(0.4)

    def test_positions_resolve_against_latest_update(self):
        updates = [
            VelocityUpdate(0.0, 0.0, 0.0, 1.0, 0.0),
            VelocityUpdate(5.0, 0.0, 2.0, 0.0, 1.0),
        ]
        samples = dead_reckoning_positions(updates, [1.0, 2.0, 3.0])
        assert (samples[0].x, samples[0].y) == (1.0, 0.0)
        assert (samples[1].x, samples[1].y) == (5.0, 0.0)
        assert (samples[2].x, samples[2].y) == (5.0, 1.0)

    def test_time_before_first_update_raises(self):
        with pytest.raises(ValueError, match="precedes"):
            dead_reckoning_positions(
                [VelocityUpdate(0.0, 0.0, 1.0, 0.0, 0.0)], [0.0]
            )


class TestEllipseBoundProperties:
    def test_bound_vanishes_at_the_reports(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(3.0, 4.0, 10.0)
        assert ellipse_uncertainty_bound(first, second, 1.0, 0.0) == pytest.approx(0.0)
        assert ellipse_uncertainty_bound(first, second, 1.0, 10.0) == pytest.approx(0.0)

    def test_bound_capped_by_half_speed_budget(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(1.0, 0.0, 2.0)
        max_speed = 2.0
        for fraction in [0.1, 0.25, 0.5, 0.75, 0.9]:
            t = 2.0 * fraction
            bound = ellipse_uncertainty_bound(first, second, max_speed, t)
            gap = math.hypot(1.0, 0.0)
            assert bound <= (max_speed * 2.0 - gap) / 2.0 + 1e-9

    def test_unreachable_reports_raise(self):
        with pytest.raises(ValueError, match="not reachable"):
            ellipse_uncertainty_bound(
                LocationUpdate(0.0, 0.0, 0.0),
                LocationUpdate(100.0, 0.0, 1.0),
                max_speed=1.0,
                t=0.5,
            )
