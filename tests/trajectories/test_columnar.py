"""Tests for the columnar store: packing, changelog sync, views, bulk boxes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.trajectories.mod as mod_module
from repro.engine.filtering import TrajectoryArrays
from repro.index.boxes import segment_boxes
from repro.trajectories.columnar import ColumnarStore, segment_boxes_bulk
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory


def make_trajectory(object_id, points, radius=0.5):
    return UncertainTrajectory(object_id, points, radius)


@pytest.fixture
def mod():
    return MovingObjectsDatabase(
        [
            make_trajectory("a", [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]),
            make_trajectory("b", [(5.0, 5.0, 0.0), (5.0, -5.0, 10.0)], radius=0.5),
            make_trajectory("c", [(1.0, 2.0, 0.0), (3.0, 4.0, 5.0), (9.0, 9.0, 10.0)]),
        ]
    )


def assert_packs_equal(left, right):
    assert left.ids == right.ids
    assert np.array_equal(left.starts, right.starts)
    assert np.array_equal(left.lengths, right.lengths)
    assert np.array_equal(left.ts, right.ts)
    assert np.array_equal(left.xs, right.xs)
    assert np.array_equal(left.ys, right.ys)
    assert np.array_equal(left.radii, right.radii)


class TestPacking:
    def test_pack_matches_sample_tuples(self, mod):
        pack = mod.columnar().pack()
        assert list(pack.ids) == mod.object_ids
        for slot, trajectory in enumerate(mod):
            start = pack.starts[slot]
            stop = start + pack.lengths[slot]
            assert np.array_equal(
                pack.ts[start:stop], [s.t for s in trajectory.samples]
            )
            assert np.array_equal(
                pack.xs[start:stop], [s.x for s in trajectory.samples]
            )
            assert np.array_equal(
                pack.ys[start:stop], [s.y for s in trajectory.samples]
            )
            assert pack.radii[slot] == trajectory.radius

    def test_flat_matches_scalar_flattening(self, mod):
        scalar = TrajectoryArrays(use_columnar=False).flat_scalar(mod)
        columnar = mod.columnar().flat()
        assert columnar[0] == scalar[0]
        for left, right in zip(columnar[1:], scalar[1:]):
            assert np.array_equal(left, right)

    def test_flat_cached_until_mutation(self, mod):
        store = mod.columnar()
        first = store.flat()
        assert store.flat() is first
        mod.remove("b")
        assert mod.columnar().flat() is not first

    def test_store_is_cached_on_the_mod(self, mod):
        assert mod.columnar() is mod.columnar()

    def test_slot_and_columns_access(self, mod):
        store = mod.columnar()
        assert store.slot_of("b") == 1
        ts, xs, ys = store.columns("c")
        assert ts.tolist() == [0.0, 5.0, 10.0]
        assert store.radius_of("b") == 0.5
        with pytest.raises(KeyError):
            store.columns("nope")

    def test_positions_interpolate(self, mod):
        store = mod.columnar()
        xs, ys = store.positions("a", np.array([0.0, 5.0, 10.0]))
        assert xs.tolist() == [0.0, 5.0, 10.0]
        assert ys.tolist() == [0.0, 0.0, 0.0]

    def test_empty_store_packs_empty_arrays(self):
        store = MovingObjectsDatabase().columnar()
        pack = store.pack()
        assert pack.ids == ()
        assert pack.sample_count == 0
        with pytest.raises(ValueError):
            pack.spatial_bounds()


class TestChangelogSync:
    def test_replace_patches_only_changed_columns(self, mod):
        store = mod.columnar()
        before_b = store.columns("b")
        mod.replace_trajectory(
            make_trajectory("a", [(0.0, 0.0, 0.0), (0.0, 9.0, 10.0)])
        )
        store.sync()
        # Untouched objects keep their identical column arrays.
        assert store.columns("b")[0] is before_b[0]
        assert store.columns("a")[1].tolist() == [0.0, 0.0]
        assert store.columns("a")[2].tolist() == [0.0, 9.0]

    def test_sync_tracks_add_remove_order(self, mod):
        store = mod.columnar()
        mod.remove("a")
        mod.add(make_trajectory("d", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)]))
        mod.upsert(make_trajectory("b", [(5.0, 5.0, 0.0), (6.0, 6.0, 10.0)]))
        store.sync()
        assert list(store.ids) == mod.object_ids

    def test_changelog_overflow_falls_back_to_full_resync(self, mod, monkeypatch):
        monkeypatch.setattr(mod_module, "_CHANGELOG_CAPACITY", 2)
        store = mod.columnar()
        for step in range(6):
            mod.upsert(
                make_trajectory("a", [(0.0, 0.0, 0.0), (float(step), 1.0, 10.0)])
            )
            mod.upsert(
                make_trajectory(f"extra-{step}", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)])
            )
        assert mod.changes_since(store.revision) is None
        store.sync()
        assert_packs_equal(
            store.pack(), ColumnarStore(MovingObjectsDatabase(list(mod))).pack()
        )

    def test_foreign_revision_resyncs(self, mod):
        store = mod.columnar()
        assert store.sync() is False  # already current
        mod.add(make_trajectory("z", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)]))
        assert store.sync() is True


class TestSeededViews:
    def test_subset_columns_are_zero_copy(self, mod):
        parent = mod.columnar()
        view = mod.subset(["a", "c"])
        store = view.columnar()
        for object_id in ("a", "c"):
            for left, right in zip(store.columns(object_id), parent.columns(object_id)):
                assert left is right

    def test_seed_survives_parent_updates(self, mod):
        parent = mod.columnar()
        view = mod.subset(["a", "b"])
        view_store = view.columnar()
        old_columns = view_store.columns("a")
        # The parent moves on; the view still mirrors its own (old) objects.
        mod.replace_trajectory(
            make_trajectory("a", [(0.0, 0.0, 0.0), (0.0, 1.0, 10.0)])
        )
        parent.sync()
        assert view.columnar().columns("a") is not parent.columns("a")
        assert view.columnar().columns("a")[0] is old_columns[0]

    def test_unseeded_subset_still_correct(self, mod):
        view = mod.subset(["b"])
        view._columnar_parent = None
        store = view.columnar()
        assert np.array_equal(store.columns("b")[0], [0.0, 10.0])


class TestSegmentBoxesBulk:
    @pytest.mark.parametrize("max_extent", [None, 0.8, 3.0])
    def test_bulk_boxes_match_scalar_loop(self, mod, max_extent):
        pack = mod.columnar().pack()
        bulk = segment_boxes_bulk(pack, max_extent=max_extent).entries()
        scalar = []
        for trajectory in mod:
            scalar.extend(segment_boxes(trajectory, max_extent=max_extent))
        assert len(bulk) == len(scalar)
        for left, right in zip(bulk, scalar):
            assert left.object_id == right.object_id
            assert left.box == right.box

    def test_explicit_margin_matches_scalar(self, mod):
        pack = mod.columnar().pack()
        bulk = segment_boxes_bulk(pack, spatial_margin=1.25).entries()
        scalar = []
        for trajectory in mod:
            scalar.extend(segment_boxes(trajectory, spatial_margin=1.25))
        assert [entry.box for entry in bulk] == [entry.box for entry in scalar]

    def test_zero_duration_legs_are_skipped(self):
        mod = MovingObjectsDatabase(
            [
                make_trajectory(
                    "dup", [(0.0, 0.0, 0.0), (5.0, 0.0, 5.0), (5.0, 1.0, 5.0), (5.0, 5.0, 10.0)]
                )
            ]
        )
        pack = mod.columnar().pack()
        bulk = segment_boxes_bulk(pack).entries()
        scalar = segment_boxes(mod.get("dup"))
        assert [entry.box for entry in bulk] == [entry.box for entry in scalar]

    def test_all_zero_duration_raises_like_segments(self):
        mod = MovingObjectsDatabase(
            [make_trajectory("flat", [(0.0, 0.0, 1.0), (1.0, 1.0, 1.0)])]
        )
        with pytest.raises(ValueError, match="positive duration"):
            segment_boxes_bulk(mod.columnar().pack())

    def test_invalid_max_extent_rejected(self, mod):
        with pytest.raises(ValueError):
            segment_boxes_bulk(mod.columnar().pack(), max_extent=0.0)


# ----------------------------------------------------------------------
# Property: any changelog-driven patch sequence equals a from-scratch pack.
# ----------------------------------------------------------------------

_COORDS = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@st.composite
def _trajectory(draw, object_id):
    count = draw(st.integers(min_value=2, max_value=5))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    points = [(draw(_COORDS), draw(_COORDS), t) for t in times]
    return make_trajectory(object_id, points, radius=draw(st.sampled_from([0.5, 1.0])))


@st.composite
def _operations(draw):
    ids = [f"obj-{index}" for index in range(4)]
    count = draw(st.integers(min_value=1, max_value=12))
    operations = []
    for _ in range(count):
        kind = draw(st.sampled_from(["upsert", "remove", "replace"]))
        object_id = draw(st.sampled_from(ids))
        if kind == "remove":
            operations.append(("remove", object_id, None))
        else:
            operations.append((kind, object_id, draw(_trajectory(object_id))))
    return operations


@settings(max_examples=60, deadline=None)
@given(operations=_operations())
def test_patched_store_equals_from_scratch_pack(operations):
    mod = MovingObjectsDatabase(
        [
            make_trajectory("obj-0", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)]),
            make_trajectory("obj-1", [(2.0, 2.0, 0.0), (3.0, 3.0, 10.0)]),
        ]
    )
    store = mod.columnar()
    for kind, object_id, trajectory in operations:
        if kind == "remove":
            if object_id in mod:
                mod.remove(object_id)
        elif kind == "replace":
            if object_id in mod:
                mod.replace_trajectory(trajectory)
        else:
            mod.upsert(trajectory)
        # Sync mid-sequence on every step: each patch must be exact, not
        # just the final state.
        store.sync()
        assert_packs_equal(
            store.pack(), ColumnarStore(MovingObjectsDatabase(list(mod))).pack()
        )
