"""Tests for the MovingObjectsDatabase store."""

import pytest

from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import Trajectory

from ..conftest import straight_trajectory


@pytest.fixture
def mod() -> MovingObjectsDatabase:
    return MovingObjectsDatabase(
        [
            straight_trajectory("q", (0.0, 0.0), (30.0, 0.0)),
            straight_trajectory("a", (0.0, 2.0), (30.0, 2.0)),
            straight_trajectory("b", (5.0, -3.0), (25.0, 3.0)),
        ]
    )


class TestStoreOperations:
    def test_length_and_membership(self, mod):
        assert len(mod) == 3
        assert "a" in mod
        assert "missing" not in mod

    def test_get_known_and_unknown(self, mod):
        assert mod.get("a").object_id == "a"
        with pytest.raises(KeyError):
            mod.get("missing")

    def test_duplicate_ids_rejected(self, mod):
        with pytest.raises(KeyError):
            mod.add(straight_trajectory("a", (0, 0), (1, 1)))

    def test_only_uncertain_trajectories_accepted(self, mod):
        with pytest.raises(TypeError):
            mod.add(Trajectory("plain", [(0, 0, 0), (1, 1, 1)]))

    def test_remove(self, mod):
        removed = mod.remove("b")
        assert removed.object_id == "b"
        assert len(mod) == 2
        with pytest.raises(KeyError):
            mod.remove("b")

    def test_add_all_and_iteration(self):
        mod = MovingObjectsDatabase()
        mod.add_all(
            [
                straight_trajectory("x", (0, 0), (1, 1)),
                straight_trajectory("y", (1, 1), (2, 2)),
            ]
        )
        assert sorted(t.object_id for t in mod) == ["x", "y"]
        assert mod.object_ids == ["x", "y"]


class TestAggregates:
    def test_common_time_span(self, mod):
        assert mod.common_time_span() == (0.0, 60.0)

    def test_common_time_span_empty_raises(self):
        with pytest.raises(ValueError):
            MovingObjectsDatabase().common_time_span()

    def test_disjoint_spans_raise(self):
        mod = MovingObjectsDatabase(
            [
                straight_trajectory("early", (0, 0), (1, 1), t_lo=0.0, t_hi=10.0),
                straight_trajectory("late", (0, 0), (1, 1), t_lo=20.0, t_hi=30.0),
            ]
        )
        with pytest.raises(ValueError):
            mod.common_time_span()

    def test_uniform_uncertainty_radius(self, mod):
        assert mod.uniform_uncertainty_radius() == pytest.approx(0.5)

    def test_heterogeneous_radii_detected(self, mod):
        mod.add(straight_trajectory("thick", (0, 0), (1, 1), radius=1.0))
        with pytest.raises(ValueError):
            mod.uniform_uncertainty_radius()

    def test_uncertainty_radii_list(self, mod):
        assert mod.uncertainty_radii() == [0.5, 0.5, 0.5]


class TestQuerySupport:
    def test_distance_functions_exclude_query(self, mod):
        functions = mod.distance_functions("q", 0.0, 60.0)
        assert sorted(f.object_id for f in functions) == ["a", "b"]

    def test_distance_functions_with_candidate_filter(self, mod):
        functions = mod.distance_functions("q", 0.0, 60.0, candidate_ids=["a", "q"])
        assert [f.object_id for f in functions] == ["a"]

    def test_distance_functions_unknown_query_raises(self, mod):
        with pytest.raises(KeyError):
            mod.distance_functions("missing", 0.0, 60.0)

    def test_clipped_database(self, mod):
        clipped = mod.clipped(10.0, 20.0)
        assert len(clipped) == 3
        assert clipped.common_time_span() == (10.0, 20.0)
