"""Tests for the trajectory and uncertain-trajectory model."""

import pytest

from repro.trajectories.trajectory import Trajectory, TrajectorySample, UncertainTrajectory
from repro.uncertainty.gaussian import TruncatedGaussianPDF
from repro.uncertainty.uniform import UniformDiskPDF


@pytest.fixture
def l_shaped() -> Trajectory:
    """East for 10 minutes, then north for 10 minutes."""
    return Trajectory(
        "obj",
        [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0), (10.0, 10.0, 20.0)],
    )


class TestTrajectoryConstruction:
    def test_needs_at_least_two_samples(self):
        with pytest.raises(ValueError):
            Trajectory("x", [(0.0, 0.0, 0.0)])

    def test_rejects_time_regressions(self):
        with pytest.raises(ValueError):
            Trajectory("x", [(0.0, 0.0, 5.0), (1.0, 1.0, 4.0)])

    def test_rejects_regressions_just_beyond_tolerance(self):
        with pytest.raises(ValueError, match="time-ordered"):
            Trajectory("x", [(0.0, 0.0, 5.0), (1.0, 1.0, 5.0 - 1e-6)])

    def test_sub_tolerance_regression_snaps_to_previous_time(self):
        # Float noise from clipping/resampling may step back by less than
        # the time tolerance; the constructor snaps such samples to the
        # previous time so the packed time column stays non-decreasing.
        trajectory = Trajectory(
            "x", [(0.0, 0.0, 0.0), (5.0, 0.0, 5.0), (5.0, 1.0, 5.0 - 1e-12), (5.0, 5.0, 10.0)]
        )
        times = trajectory.sample_times()
        assert times == sorted(times)
        assert times[2] == 5.0
        # The snapped sample keeps its location and becomes a zero-length leg.
        assert trajectory.samples[2].y == 1.0
        assert len(trajectory.segments()) == 2

    def test_equal_time_samples_remain_allowed(self):
        trajectory = Trajectory(
            "x", [(0.0, 0.0, 0.0), (5.0, 0.0, 5.0), (5.0, 2.0, 5.0), (5.0, 5.0, 10.0)]
        )
        assert len(trajectory.segments()) == 2
        assert trajectory.position_at(7.5).as_tuple() == pytest.approx((5.0, 3.5))

    def test_accepts_tuples_and_samples(self):
        trajectory = Trajectory(
            "x", [TrajectorySample(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]
        )
        assert len(trajectory) == 2

    def test_from_waypoints(self):
        trajectory = Trajectory.from_waypoints("w", [(0, 0, 0), (5, 5, 10)])
        assert trajectory.object_id == "w"
        assert trajectory.duration == 10.0


class TestTrajectoryGeometry:
    def test_time_span(self, l_shaped):
        assert l_shaped.start_time == 0.0
        assert l_shaped.end_time == 20.0
        assert l_shaped.duration == 20.0

    def test_covers_time_and_interval(self, l_shaped):
        assert l_shaped.covers_time(15.0)
        assert not l_shaped.covers_time(25.0)
        assert l_shaped.covers_interval(2.0, 18.0)
        assert not l_shaped.covers_interval(2.0, 28.0)

    def test_segments(self, l_shaped):
        segments = l_shaped.segments()
        assert len(segments) == 2
        assert segments[0].velocity.as_tuple() == pytest.approx((1.0, 0.0))
        assert segments[1].velocity.as_tuple() == pytest.approx((0.0, 1.0))

    def test_zero_duration_legs_are_skipped(self):
        trajectory = Trajectory(
            "x", [(0, 0, 0.0), (5, 0, 5.0), (5, 0, 5.0), (5, 5, 10.0)]
        )
        assert len(trajectory.segments()) == 2

    def test_position_interpolation(self, l_shaped):
        assert l_shaped.position_at(5.0).as_tuple() == pytest.approx((5.0, 0.0))
        assert l_shaped.position_at(15.0).as_tuple() == pytest.approx((10.0, 5.0))

    def test_position_outside_span_raises(self, l_shaped):
        with pytest.raises(ValueError):
            l_shaped.position_at(21.0)

    def test_velocity_at(self, l_shaped):
        assert l_shaped.velocity_at(3.0).as_tuple() == pytest.approx((1.0, 0.0))
        assert l_shaped.velocity_at(13.0).as_tuple() == pytest.approx((0.0, 1.0))

    def test_sample_times_and_breakpoints(self, l_shaped):
        assert l_shaped.sample_times() == [0.0, 10.0, 20.0]
        assert l_shaped.breakpoints_in(0.0, 20.0) == [10.0]
        assert l_shaped.breakpoints_in(11.0, 20.0) == []

    def test_spatial_bounds_and_length(self, l_shaped):
        assert l_shaped.spatial_bounds() == (0.0, 0.0, 10.0, 10.0)
        assert l_shaped.total_length() == pytest.approx(20.0)


class TestTrajectoryClipping:
    def test_clipping_inside_one_segment(self, l_shaped):
        clipped = l_shaped.clipped(2.0, 8.0)
        assert clipped.start_time == 2.0
        assert clipped.end_time == 8.0
        assert clipped.position_at(5.0).as_tuple() == pytest.approx((5.0, 0.0))

    def test_clipping_across_breakpoint_keeps_it(self, l_shaped):
        clipped = l_shaped.clipped(5.0, 15.0)
        assert 10.0 in clipped.sample_times()
        assert clipped.position_at(15.0).as_tuple() == pytest.approx((10.0, 5.0))

    def test_clipping_outside_raises(self, l_shaped):
        with pytest.raises(ValueError):
            l_shaped.clipped(-5.0, 10.0)


class TestUncertainTrajectory:
    def make(self, radius=0.5, pdf=None) -> UncertainTrajectory:
        return UncertainTrajectory(
            "u", [(0, 0, 0.0), (10, 0, 10.0)], radius, pdf
        )

    def test_radius_must_be_positive(self):
        with pytest.raises(ValueError):
            self.make(radius=0.0)

    def test_default_pdf_is_uniform_with_matching_radius(self):
        trajectory = self.make(radius=0.7)
        assert isinstance(trajectory.pdf, UniformDiskPDF)
        assert trajectory.pdf.radius == pytest.approx(0.7)

    def test_pdf_support_cannot_exceed_radius(self):
        with pytest.raises(ValueError):
            self.make(radius=0.5, pdf=UniformDiskPDF(1.0))

    def test_gaussian_pdf_accepted(self):
        trajectory = self.make(radius=1.0, pdf=TruncatedGaussianPDF(1.0))
        assert trajectory.pdf.support_radius == pytest.approx(1.0)

    def test_uncertainty_disk_follows_expected_location(self):
        trajectory = self.make()
        disk = trajectory.uncertainty_disk_at(5.0)
        assert disk.center.as_tuple() == pytest.approx((5.0, 0.0))
        assert disk.radius == 0.5

    def test_crisp_projection(self):
        crisp = self.make().crisp()
        assert isinstance(crisp, Trajectory)
        assert not isinstance(crisp, UncertainTrajectory)
        assert crisp.object_id == "u"

    def test_clipping_preserves_uncertainty(self):
        clipped = self.make().clipped(2.0, 8.0)
        assert isinstance(clipped, UncertainTrajectory)
        assert clipped.radius == 0.5

    def test_with_radius(self):
        changed = self.make().with_radius(1.5)
        assert changed.radius == 1.5
        assert changed.object_id == "u"
