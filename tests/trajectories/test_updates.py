"""Tests for the alternative motion models (location updates, dead reckoning)."""

import pytest

from repro.trajectories.updates import (
    LocationUpdate,
    VelocityUpdate,
    dead_reckoning_positions,
    ellipse_uncertainty_bound,
    max_ellipse_uncertainty,
    trajectory_from_dead_reckoning,
    trajectory_from_updates,
)


class TestEllipseBound:
    def test_zero_at_update_times(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(4.0, 0.0, 10.0)
        assert ellipse_uncertainty_bound(first, second, 1.0, 0.0) == pytest.approx(0.0)
        assert ellipse_uncertainty_bound(first, second, 1.0, 10.0) == pytest.approx(0.0)

    def test_positive_between_updates_when_speed_has_slack(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(4.0, 0.0, 10.0)  # average speed 0.4 < max 1.0
        middle = ellipse_uncertainty_bound(first, second, 1.0, 5.0)
        assert middle > 0.0
        # The bound can never exceed the forward reachability radius.
        assert middle <= 5.0

    def test_zero_slack_when_moving_at_max_speed(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(10.0, 0.0, 10.0)  # exactly max speed
        assert ellipse_uncertainty_bound(first, second, 1.0, 5.0) == pytest.approx(0.0, abs=1e-9)

    def test_unreachable_updates_rejected(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(100.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            ellipse_uncertainty_bound(first, second, 1.0, 5.0)

    def test_time_outside_interval_rejected(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            ellipse_uncertainty_bound(first, second, 1.0, 11.0)

    def test_max_over_interval(self):
        first = LocationUpdate(0.0, 0.0, 0.0)
        second = LocationUpdate(4.0, 0.0, 10.0)
        worst = max_ellipse_uncertainty(first, second, 1.0)
        mid = ellipse_uncertainty_bound(first, second, 1.0, 5.0)
        assert worst >= mid - 1e-9
        with pytest.raises(ValueError):
            max_ellipse_uncertainty(first, second, 1.0, samples=1)


class TestTrajectoryFromUpdates:
    def test_expected_path_interpolates_reports(self):
        updates = [
            LocationUpdate(0.0, 0.0, 0.0),
            LocationUpdate(4.0, 0.0, 10.0),
            LocationUpdate(4.0, 4.0, 20.0),
        ]
        trajectory = trajectory_from_updates("u", updates, max_speed=1.0)
        assert trajectory.position_at(5.0).as_tuple() == pytest.approx((2.0, 0.0))
        assert trajectory.position_at(15.0).as_tuple() == pytest.approx((4.0, 2.0))

    def test_radius_covers_the_worst_ellipse(self):
        updates = [LocationUpdate(0.0, 0.0, 0.0), LocationUpdate(4.0, 0.0, 10.0)]
        trajectory = trajectory_from_updates("u", updates, max_speed=1.0)
        assert trajectory.radius >= max_ellipse_uncertainty(updates[0], updates[1], 1.0) - 1e-9

    def test_needs_two_updates(self):
        with pytest.raises(ValueError):
            trajectory_from_updates("u", [LocationUpdate(0.0, 0.0, 0.0)], 1.0)

    def test_minimum_radius_floor(self):
        updates = [LocationUpdate(0.0, 0.0, 0.0), LocationUpdate(10.0, 0.0, 10.0)]
        trajectory = trajectory_from_updates("u", updates, max_speed=1.0, minimum_radius=0.05)
        assert trajectory.radius == pytest.approx(0.05)


class TestDeadReckoning:
    def test_positions_follow_latest_update(self):
        updates = [
            VelocityUpdate(0.0, 0.0, 0.0, 1.0, 0.0),
            VelocityUpdate(10.0, 2.0, 10.0, 0.0, 1.0),
        ]
        samples = dead_reckoning_positions(updates, [5.0, 12.0])
        assert (samples[0].x, samples[0].y) == pytest.approx((5.0, 0.0))
        assert (samples[1].x, samples[1].y) == pytest.approx((10.0, 4.0))

    def test_time_before_first_update_rejected(self):
        updates = [VelocityUpdate(0.0, 0.0, 5.0, 1.0, 0.0)]
        with pytest.raises(ValueError):
            dead_reckoning_positions(updates, [0.0])

    def test_trajectory_passes_through_reports_and_extrapolates(self):
        updates = [
            VelocityUpdate(0.0, 0.0, 0.0, 1.0, 0.0),
            VelocityUpdate(8.0, 1.0, 10.0, 0.0, 1.0),
        ]
        trajectory = trajectory_from_dead_reckoning("d", updates, d_max=0.5, end_time=20.0)
        assert trajectory.radius == pytest.approx(0.5)
        assert trajectory.position_at(0.0).as_tuple() == pytest.approx((0.0, 0.0))
        assert trajectory.position_at(10.0).as_tuple() == pytest.approx((8.0, 1.0))
        # After the last report the expected path follows the reported velocity.
        assert trajectory.position_at(20.0).as_tuple() == pytest.approx((8.0, 11.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            trajectory_from_dead_reckoning("d", [], d_max=0.5)
        with pytest.raises(ValueError):
            trajectory_from_dead_reckoning(
                "d", [VelocityUpdate(0, 0, 0, 1, 0)], d_max=0.0
            )
        with pytest.raises(ValueError):
            trajectory_from_dead_reckoning(
                "d", [VelocityUpdate(0, 0, 5.0, 1, 0)], d_max=0.5, end_time=5.0
            )

    def test_resulting_trajectory_is_queryable(self):
        from repro.core.continuous import ContinuousProbabilisticNNQuery
        from repro.trajectories.mod import MovingObjectsDatabase

        streams = {
            "a": [VelocityUpdate(0.0, 0.0, 0.0, 0.5, 0.0)],
            "b": [VelocityUpdate(0.0, 1.0, 0.0, 0.5, 0.0)],
            "c": [VelocityUpdate(0.0, 10.0, 0.0, 0.5, 0.0)],
        }
        mod = MovingObjectsDatabase(
            trajectory_from_dead_reckoning(name, updates, d_max=0.4, end_time=30.0)
            for name, updates in streams.items()
        )
        query = ContinuousProbabilisticNNQuery(mod, "a", 0.0, 30.0)
        assert query.all_with_nonzero_probability_sometime() == ["b"]
