"""Tests for difference (relative) trajectories and their distance functions."""

import numpy as np
import pytest

from repro.trajectories.difference import (
    difference_distance_function,
    difference_distance_functions,
    expected_distance_at,
    relative_position_at,
)
from repro.trajectories.trajectory import Trajectory

from ..conftest import straight_trajectory


class TestDifferenceDistanceFunction:
    def test_matches_sampled_expected_distances_single_segment(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        other = straight_trajectory("a", (0.0, 5.0), (30.0, -5.0))
        function = difference_distance_function(other, query, 0.0, 60.0)
        for t in np.linspace(0.0, 60.0, 31):
            expected = expected_distance_at(other, query, float(t))
            assert function.value(float(t)) == pytest.approx(expected, rel=1e-7, abs=1e-6)

    def test_matches_sampled_expected_distances_multi_segment(self):
        query = Trajectory("q", [(0, 0, 0.0), (10, 0, 30.0), (10, 10, 60.0)])
        other = Trajectory("a", [(5, 5, 0.0), (5, -5, 20.0), (0, -5, 60.0)])
        function = difference_distance_function(other, query, 0.0, 60.0)
        for t in np.linspace(0.0, 60.0, 61):
            expected = expected_distance_at(other, query, float(t))
            assert function.value(float(t)) == pytest.approx(expected, rel=1e-7, abs=1e-6)

    def test_breakpoints_are_union_of_sample_times(self):
        query = Trajectory("q", [(0, 0, 0.0), (10, 0, 30.0), (10, 10, 60.0)])
        other = Trajectory("a", [(5, 5, 0.0), (5, -5, 20.0), (0, -5, 60.0)])
        function = difference_distance_function(other, query, 0.0, 60.0)
        assert set(function.breakpoints(0.0, 60.0)) == {20.0, 30.0}

    def test_restricting_the_window(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        other = straight_trajectory("a", (0.0, 5.0), (30.0, 5.0))
        function = difference_distance_function(other, query, 10.0, 50.0)
        assert function.t_start == 10.0
        assert function.t_end == 50.0

    def test_uncovered_window_raises(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0), t_hi=30.0)
        other = straight_trajectory("a", (0.0, 5.0), (30.0, 5.0), t_hi=60.0)
        with pytest.raises(ValueError):
            difference_distance_function(other, query, 0.0, 60.0)
        with pytest.raises(ValueError):
            difference_distance_function(query, other, 0.0, 60.0)

    def test_empty_window_rejected(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        other = straight_trajectory("a", (0.0, 5.0), (30.0, 5.0))
        with pytest.raises(ValueError):
            difference_distance_function(other, query, 10.0, 5.0)

    def test_object_id_is_preserved(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        other = straight_trajectory("a", (0.0, 5.0), (30.0, 5.0))
        function = difference_distance_function(other, query, 0.0, 60.0)
        assert function.object_id == "a"


class TestBatchConstruction:
    def test_query_is_skipped_by_default(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        others = [
            query,
            straight_trajectory("a", (0.0, 5.0), (30.0, 5.0)),
            straight_trajectory("b", (0.0, -5.0), (30.0, -5.0)),
        ]
        functions = difference_distance_functions(others, query, 0.0, 60.0)
        assert sorted(f.object_id for f in functions) == ["a", "b"]

    def test_query_can_be_kept_explicitly(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        functions = difference_distance_functions([query], query, 0.0, 60.0, skip_query=False)
        assert len(functions) == 1
        assert functions[0].value(30.0) == pytest.approx(0.0)


class TestRelativePosition:
    def test_relative_position_at(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        other = straight_trajectory("a", (0.0, 5.0), (30.0, 5.0))
        assert relative_position_at(other, query, 30.0) == pytest.approx((0.0, 5.0))

    def test_expected_distance_at(self):
        query = straight_trajectory("q", (0.0, 0.0), (30.0, 0.0))
        other = straight_trajectory("a", (0.0, 3.0), (30.0, 3.0))
        assert expected_distance_at(other, query, 17.0) == pytest.approx(3.0)
