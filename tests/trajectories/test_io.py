"""Tests for trajectory persistence (CSV and JSON round-trips)."""

import numpy as np
import pytest

from repro.trajectories.io import load_csv, load_json, save_csv, save_json
from repro.trajectories.mod import MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import TruncatedGaussianPDF
from repro.workloads.random_waypoint import RandomWaypointConfig, generate_trajectories

from ..conftest import straight_trajectory


@pytest.fixture
def mixed_mod() -> MovingObjectsDatabase:
    gaussian_trajectory = UncertainTrajectory(
        "g", [(0.0, 0.0, 0.0), (5.0, 5.0, 30.0), (10.0, 0.0, 60.0)],
        radius=1.0,
        pdf=TruncatedGaussianPDF(1.0, sigma=0.4),
    )
    return MovingObjectsDatabase(
        [
            straight_trajectory("a", (0.0, 1.0), (30.0, 1.0), radius=0.5),
            straight_trajectory("b", (0.0, -1.0), (30.0, -1.0), radius=0.75),
            gaussian_trajectory,
        ]
    )


def assert_same_geometry(original: MovingObjectsDatabase, loaded: MovingObjectsDatabase):
    assert sorted(map(str, loaded.object_ids)) == sorted(map(str, original.object_ids))
    for trajectory in original:
        restored = loaded.get(str(trajectory.object_id)) if str(trajectory.object_id) in loaded else loaded.get(trajectory.object_id)
        assert restored.radius == pytest.approx(trajectory.radius)
        for t in np.linspace(trajectory.start_time, trajectory.end_time, 7):
            assert restored.position_at(float(t)).distance_to(
                trajectory.position_at(float(t))
            ) == pytest.approx(0.0, abs=1e-9)


class TestCSVRoundTrip:
    def test_round_trip_preserves_geometry(self, mixed_mod, tmp_path):
        path = tmp_path / "mod.csv"
        rows = save_csv(mixed_mod, path)
        assert rows == sum(len(t.samples) for t in mixed_mod)
        loaded, report = load_csv(path)
        assert report.trajectories == 3
        assert report.samples == rows
        assert_same_geometry(mixed_mod, loaded)

    def test_round_trip_preserves_pdf_family(self, mixed_mod, tmp_path):
        path = tmp_path / "mod.csv"
        save_csv(mixed_mod, path)
        loaded, _ = load_csv(path)
        assert isinstance(loaded.get("g").pdf, TruncatedGaussianPDF)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("object_id,x,y\n1,2,3\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_single_sample_objects_are_skipped_with_warning(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text(
            "object_id,x,y,t,radius,pdf\n"
            "solo,1.0,2.0,3.0,0.5,uniform\n"
            "ok,0.0,0.0,0.0,0.5,uniform\n"
            "ok,1.0,1.0,10.0,0.5,uniform\n"
        )
        loaded, report = load_csv(path)
        assert "ok" in loaded and "solo" not in loaded
        assert any("solo" in warning for warning in report.warnings)

    def test_unknown_pdf_family_rejected(self, tmp_path):
        path = tmp_path / "odd.csv"
        path.write_text(
            "object_id,x,y,t,radius,pdf\n"
            "x,0.0,0.0,0.0,0.5,exotic\n"
            "x,1.0,1.0,10.0,0.5,exotic\n"
        )
        with pytest.raises(ValueError):
            load_csv(path)


class TestJSONRoundTrip:
    def test_round_trip_preserves_geometry_and_metadata(self, mixed_mod, tmp_path):
        path = tmp_path / "mod.json"
        count = save_json(mixed_mod, path)
        assert count == 3
        loaded, report = load_json(path)
        assert report.trajectories == 3
        assert_same_geometry(mixed_mod, loaded)
        gaussian = loaded.get("g")
        assert isinstance(gaussian.pdf, TruncatedGaussianPDF)
        assert gaussian.pdf.sigma == pytest.approx(0.4)

    def test_json_preserves_object_id_types(self, tmp_path):
        mod = MovingObjectsDatabase(
            generate_trajectories(RandomWaypointConfig(num_objects=3, seed=2))
        )
        path = tmp_path / "ids.json"
        save_json(mod, path)
        loaded, _ = load_json(path)
        assert set(loaded.object_ids) == {0, 1, 2}

    def test_foreign_document_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_json(path)

    def test_workload_round_trip_preserves_query_answers(self, tmp_path):
        from repro.core.continuous import ContinuousProbabilisticNNQuery

        mod = MovingObjectsDatabase(
            generate_trajectories(RandomWaypointConfig(num_objects=15, seed=9))
        )
        path = tmp_path / "workload.json"
        save_json(mod, path)
        loaded, _ = load_json(path)
        original_answer = ContinuousProbabilisticNNQuery(
            mod, 0, 0.0, 60.0
        ).all_with_nonzero_probability_sometime()
        restored_answer = ContinuousProbabilisticNNQuery(
            loaded, 0, 0.0, 60.0
        ).all_with_nonzero_probability_sometime()
        assert set(original_answer) == set(restored_answer)
