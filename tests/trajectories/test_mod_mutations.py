"""Mutation APIs of the MOD: remove/replace, per-object revisions, changelog."""

import pytest

from repro.trajectories.mod import ChangeRecord, MovingObjectsDatabase
from repro.trajectories.trajectory import UncertainTrajectory


def make_trajectory(object_id, points, radius=0.5):
    return UncertainTrajectory(object_id, points, radius)


@pytest.fixture
def mod():
    return MovingObjectsDatabase(
        [
            make_trajectory("a", [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]),
            make_trajectory("b", [(5.0, 5.0, 0.0), (5.0, -5.0, 10.0)]),
        ]
    )


class TestRemove:
    def test_remove_returns_trajectory_and_forgets_it(self, mod):
        removed = mod.remove("a")
        assert removed.object_id == "a"
        assert "a" not in mod
        assert len(mod) == 1

    def test_remove_unknown_id_raises(self, mod):
        with pytest.raises(KeyError):
            mod.remove("nope")

    def test_remove_bumps_revision(self, mod):
        before = mod.revision
        mod.remove("a")
        assert mod.revision == before + 1


class TestReplaceTrajectory:
    def test_replace_swaps_and_returns_previous(self, mod):
        old = mod.get("a")
        new = make_trajectory("a", [(0.0, 0.0, 0.0), (0.0, 10.0, 10.0)])
        previous = mod.replace_trajectory(new)
        assert previous is old
        assert mod.get("a") is new
        assert len(mod) == 2

    def test_replace_unknown_id_raises(self, mod):
        with pytest.raises(KeyError):
            mod.replace_trajectory(
                make_trajectory("ghost", [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
            )

    def test_replace_rejects_crisp_trajectories(self, mod):
        with pytest.raises(TypeError):
            mod.replace_trajectory(mod.get("a").crisp())

    def test_upsert_adds_then_replaces(self, mod):
        fresh = make_trajectory("c", [(1.0, 1.0, 0.0), (2.0, 2.0, 10.0)])
        assert mod.upsert(fresh) is None
        assert "c" in mod
        again = make_trajectory("c", [(1.0, 1.0, 0.0), (3.0, 3.0, 10.0)])
        assert mod.upsert(again) is fresh


class TestRevisionsAndChangelog:
    def test_object_revision_tracks_latest_change(self, mod):
        first = mod.object_revision("a")
        mod.replace_trajectory(
            make_trajectory("a", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)])
        )
        assert mod.object_revision("a") == mod.revision > first

    def test_object_revision_unknown_raises(self, mod):
        with pytest.raises(KeyError):
            mod.object_revision("nope")

    def test_changes_since_lists_mutations_in_order(self, mod):
        base = mod.revision
        mod.remove("b")
        mod.add(make_trajectory("c", [(0.0, 0.0, 0.0), (1.0, 0.0, 10.0)]))
        changes = mod.changes_since(base)
        assert [record.kind for record in changes] == ["remove", "add"]
        assert [record.object_id for record in changes] == ["b", "c"]
        assert all(isinstance(record, ChangeRecord) for record in changes)

    def test_changes_since_current_revision_is_empty(self, mod):
        assert mod.changes_since(mod.revision) == []

    def test_changes_since_future_or_foreign_revision_is_none(self, mod):
        assert mod.changes_since(mod.revision + 5) is None
        assert mod.changes_since(-1) is None

    def test_changes_since_trimmed_history_is_none(self, mod):
        from repro.trajectories import mod as mod_module

        base = mod.revision
        new = make_trajectory("a", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)])
        for _ in range(mod_module._CHANGELOG_CAPACITY + 1):
            new = mod.replace_trajectory(new)
        assert mod.changes_since(base) is None
        assert mod.changes_since(mod.revision - 1) is not None


class TestDivergenceTime:
    def test_pure_extension_diverges_at_old_end(self, mod):
        base = mod.revision
        old = mod.get("a")
        extended = UncertainTrajectory(
            "a",
            list(old.samples) + [type(old.samples[0])(12.0, 0.0, 12.0)],
            old.radius,
        )
        mod.replace_trajectory(extended)
        (record,) = mod.changes_since(base)
        assert record.divergence_time == pytest.approx(old.end_time)

    def test_in_window_edit_diverges_at_last_shared_sample(self, mod):
        base = mod.revision
        mod.replace_trajectory(
            make_trajectory("a", [(0.0, 0.0, 0.0), (99.0, 0.0, 10.0)])
        )
        (record,) = mod.changes_since(base)
        assert record.divergence_time == pytest.approx(0.0)

    def test_radius_change_is_a_global_divergence(self, mod):
        base = mod.revision
        old = mod.get("a")
        mod.replace_trajectory(
            UncertainTrajectory("a", old.samples, old.radius * 2.0)
        )
        (record,) = mod.changes_since(base)
        assert record.divergence_time is None

    def test_add_and_remove_are_global(self, mod):
        base = mod.revision
        mod.remove("b")
        mod.add(make_trajectory("d", [(0.0, 0.0, 0.0), (1.0, 1.0, 10.0)]))
        removal, addition = mod.changes_since(base)
        assert removal.divergence_time is None
        assert addition.divergence_time is None
