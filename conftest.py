"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. in offline environments where editable installs are awkward); an
installed ``repro`` takes precedence because site-packages is earlier on the
path only when the egg-link exists.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running differential/backend tests; the CI perf job "
        "selects them explicitly with -m slow",
    )
