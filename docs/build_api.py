"""Build the HTML API reference for the ``repro`` package.

Prefers `pdoc <https://pdoc.dev>`_ (installed via ``requirements-dev.txt``;
what CI publishes as the ``api-docs`` artifact).  When pdoc is unavailable
— e.g. offline development containers — a small stdlib-only renderer emits
a plain but complete HTML reference from the live docstrings instead, so
``make docs`` builds cleanly everywhere.

Usage::

    python docs/build_api.py --out docs/api
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import os
import pkgutil
import sys
from typing import List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PACKAGE = "repro"

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; max-width: 60rem; margin: 2rem auto; padding: 0 1rem; line-height: 1.5; }}
pre {{ background: #f6f6f6; padding: 0.8rem; overflow-x: auto; white-space: pre-wrap; }}
code {{ background: #f6f6f6; }}
h2 {{ border-bottom: 1px solid #ddd; padding-bottom: 0.2rem; margin-top: 2rem; }}
.kind {{ color: #777; font-size: 0.85em; margin-left: 0.5em; }}
nav a {{ margin-right: 1em; }}
</style>
</head>
<body>
<nav><a href="index.html">module index</a></nav>
{body}
</body>
</html>
"""


def _ensure_importable() -> None:
    src = os.path.join(ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def _iter_module_names() -> List[str]:
    """Every importable module of the package, in sorted order."""
    package = importlib.import_module(PACKAGE)
    names = [PACKAGE]
    for info in pkgutil.walk_packages(package.__path__, prefix=f"{PACKAGE}."):
        names.append(info.name)
    return sorted(names)


def _doc_block(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return f"<pre>{html.escape(doc)}</pre>" if doc else ""


def _signature(obj) -> str:
    try:
        return html.escape(str(inspect.signature(obj)))
    except (TypeError, ValueError):
        return "(…)"


def _public_members(module):
    """(name, object) pairs a module's API page should document."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [name for name in vars(module) if not name.startswith("_")]
    members = []
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or inspect.ismodule(obj):
            continue
        # Skip re-exports: document each object on its defining module only.
        defined_in = getattr(obj, "__module__", module.__name__)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if defined_in != module.__name__:
                continue
        members.append((name, obj))
    return members


def _render_module(module_name: str) -> str:
    module = importlib.import_module(module_name)
    parts = [f"<h1><code>{html.escape(module_name)}</code></h1>"]
    parts.append(_doc_block(module))
    for name, obj in _public_members(module):
        escaped = html.escape(name)
        if inspect.isclass(obj):
            parts.append(
                f"<h2 id={escaped!r}><code>class {escaped}{_signature(obj)}"
                f"</code><span class='kind'>class</span></h2>"
            )
            parts.append(_doc_block(obj))
            for method_name, method in sorted(vars(obj).items()):
                if method_name.startswith("_"):
                    continue
                if callable(method):
                    parts.append(
                        f"<h3><code>{escaped}.{html.escape(method_name)}"
                        f"{_signature(method)}</code></h3>"
                    )
                    parts.append(_doc_block(method))
                elif isinstance(method, property):
                    parts.append(
                        f"<h3><code>{escaped}.{html.escape(method_name)}"
                        f"</code><span class='kind'>property</span></h3>"
                    )
                    parts.append(_doc_block(method))
        elif inspect.isfunction(obj):
            parts.append(
                f"<h2 id={escaped!r}><code>{escaped}{_signature(obj)}"
                f"</code><span class='kind'>function</span></h2>"
            )
            parts.append(_doc_block(obj))
        else:
            parts.append(
                f"<h2 id={escaped!r}><code>{escaped}</code>"
                f"<span class='kind'>{html.escape(type(obj).__name__)}</span></h2>"
            )
    return _PAGE_TEMPLATE.format(
        title=html.escape(module_name), body="\n".join(parts)
    )


def build_fallback(out_dir: str) -> None:
    """Stdlib-only renderer: one HTML page per module plus an index."""
    os.makedirs(out_dir, exist_ok=True)
    module_names = _iter_module_names()
    entries = []
    for module_name in module_names:
        page = f"{module_name}.html"
        with open(os.path.join(out_dir, page), "w") as handle:
            handle.write(_render_module(module_name))
        summary = (
            inspect.getdoc(importlib.import_module(module_name)) or ""
        ).splitlines()
        first_line = html.escape(summary[0]) if summary else ""
        entries.append(
            f"<li><a href='{page}'><code>{html.escape(module_name)}</code></a>"
            f" — {first_line}</li>"
        )
    body = (
        "<h1>repro API reference</h1>"
        "<p>Generated by the stdlib fallback renderer "
        "(<code>docs/build_api.py</code>); install <code>pdoc</code> for the "
        "full-featured reference.</p>"
        f"<ul>{''.join(entries)}</ul>"
    )
    with open(os.path.join(out_dir, "index.html"), "w") as handle:
        handle.write(_PAGE_TEMPLATE.format(title="repro API reference", body=body))
    print(f"fallback API reference: {len(module_names)} modules -> {out_dir}")


def build_pdoc(out_dir: str) -> None:
    """Render with pdoc (modern pdoc >= 8 API)."""
    from pathlib import Path

    import pdoc

    pdoc.pdoc(PACKAGE, output_directory=Path(out_dir))
    print(f"pdoc API reference -> {out_dir}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=str, default=os.path.join("docs", "api"),
        help="output directory for the HTML reference",
    )
    parser.add_argument(
        "--fallback", action="store_true",
        help="force the stdlib renderer even when pdoc is installed",
    )
    args = parser.parse_args()
    _ensure_importable()
    use_pdoc = not args.fallback
    if use_pdoc:
        try:
            import pdoc  # noqa: F401
        except ImportError:
            use_pdoc = False
    if use_pdoc:
        build_pdoc(args.out)
    else:
        build_fallback(args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
