"""Verify intra-repo links in the markdown docs resolve.

Scans ``README.md`` and every ``docs/*.md`` for markdown links and images,
and fails when a *relative* target (anything that is not an absolute URL or
a pure in-page anchor) does not exist on disk relative to the linking file.
Run by ``make docs`` and by ``tests/test_docs.py``, so a renamed file or a
typoed path breaks CI instead of readers.

Usage::

    python docs/check_links.py
"""

from __future__ import annotations

import glob
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links/images: [text](target) — title suffixes allowed.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def document_paths() -> list:
    """The markdown files whose links are checked."""
    paths = [os.path.join(ROOT, "README.md")]
    paths.extend(sorted(glob.glob(os.path.join(ROOT, "docs", "*.md"))))
    paths.extend(sorted(glob.glob(os.path.join(ROOT, "benchmarks", "*.md"))))
    return [path for path in paths if os.path.exists(path)]


def broken_links(path: str) -> list:
    """``(target, reason)`` pairs for every unresolvable link in one file."""
    with open(path) as handle:
        text = handle.read()
    problems = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target.split("#", 1)[0])
        )
        if not os.path.exists(resolved):
            problems.append((target, f"missing {os.path.relpath(resolved, ROOT)}"))
    return problems


def main() -> int:
    failures = 0
    for path in document_paths():
        for target, reason in broken_links(path):
            print(
                f"{os.path.relpath(path, ROOT)}: broken link {target!r} ({reason})",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"links ok across {len(document_paths())} markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
